// Package rubis models the RUBiS auction-site benchmark (the eBay-like
// three-tier application the paper drives): the relational schema and
// dataset, the 26 client interaction types, and the browse/bid Markov
// transition tables that generate the two request compositions the paper
// reports.
//
// Interactions execute real queries against the rubisdb storage engine;
// their cost receipts plus the web-tier templating model produce the
// per-request resource demands that the tier servers replay in simulated
// time.
package rubis

import (
	"math"

	"vwchar/internal/rng"
	"vwchar/internal/rubisdb"
)

// DatasetConfig scales the generated auction dataset. Defaults follow
// the RUBiS distribution's shape, scaled to keep experiment setup fast.
type DatasetConfig struct {
	Regions         int
	Categories      int
	Users           int
	ActiveItems     int
	OldItems        int
	BidsPerItem     int
	CommentsPerUser int
	BufferPages     int
}

// DefaultDataset returns the standard scaled dataset.
func DefaultDataset() DatasetConfig {
	return DatasetConfig{
		Regions:         62,
		Categories:      20,
		Users:           12000,
		ActiveItems:     3600,
		OldItems:        7800,
		BidsPerItem:     6,
		CommentsPerUser: 2,
		// BufferPages is sized below the dataset's working set so the
		// engine sustains a realistic miss stream (the paper's MySQL
		// tier shows continuous disk reads, not a one-time warmup).
		BufferPages: 950,
	}
}

// App is one populated RUBiS database plus its interaction logic.
type App struct {
	Engine *rubisdb.Engine
	Config DatasetConfig

	// catWeights and regWeights skew browsing toward popular categories
	// and regions (Zipf-like), giving the buffer pool a realistic hot
	// set instead of a uniform scan.
	catWeights []float64
	regWeights []float64

	users, items, bids, comments, buyNow, categories, regions *rubisdb.Table

	// nextItemID etc. hand out primary keys for runtime writes.
	nextItemID    int64
	nextBidID     int64
	nextCommentID int64
	nextBuyNowID  int64
	nextUserID    int64

	// snap is non-nil while this App is an attached copy-on-write view
	// of a golden Snapshot; Release returns it to the snapshot's pool.
	snap *Snapshot
}

// NewApp creates the schema and populates the dataset using the given
// random stream.
func NewApp(cfg DatasetConfig, r *rng.Stream) (*App, error) {
	a := &App{
		Engine: rubisdb.NewEngine(cfg.BufferPages, rubisdb.DefaultCostModel()),
		Config: cfg,
	}
	if err := a.createSchema(); err != nil {
		return nil, err
	}
	if err := a.populate(r); err != nil {
		return nil, err
	}
	a.catWeights = zipfWeights(cfg.Categories, 1.1)
	a.regWeights = zipfWeights(cfg.Regions, 1.1)
	return a, nil
}

// zipfWeights returns weights proportional to 1/(rank+1)^skew.
func zipfWeights(n int, skew float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), skew)
	}
	return w
}

func (a *App) createSchema() error {
	var err error
	a.regions, err = a.Engine.CreateTable("regions", rubisdb.Schema{
		{Name: "id", Type: rubisdb.TInt64},
		{Name: "name", Type: rubisdb.TString},
	}, "id")
	if err != nil {
		return err
	}
	a.categories, err = a.Engine.CreateTable("categories", rubisdb.Schema{
		{Name: "id", Type: rubisdb.TInt64},
		{Name: "name", Type: rubisdb.TString},
	}, "id")
	if err != nil {
		return err
	}
	a.users, err = a.Engine.CreateTable("users", rubisdb.Schema{
		{Name: "id", Type: rubisdb.TInt64},
		{Name: "nickname", Type: rubisdb.TString},
		{Name: "region", Type: rubisdb.TInt64},
		{Name: "rating", Type: rubisdb.TInt64},
		{Name: "balance", Type: rubisdb.TFloat64},
	}, "id", "region")
	if err != nil {
		return err
	}
	a.items, err = a.Engine.CreateTable("items", rubisdb.Schema{
		{Name: "id", Type: rubisdb.TInt64},
		{Name: "name", Type: rubisdb.TString},
		{Name: "description", Type: rubisdb.TString},
		{Name: "seller", Type: rubisdb.TInt64},
		{Name: "category", Type: rubisdb.TInt64},
		{Name: "initial_price", Type: rubisdb.TFloat64},
		{Name: "max_bid", Type: rubisdb.TFloat64},
		{Name: "nb_bids", Type: rubisdb.TInt64},
		{Name: "quantity", Type: rubisdb.TInt64},
		{Name: "buy_now", Type: rubisdb.TFloat64},
		{Name: "end_date", Type: rubisdb.TInt64},
	}, "id", "seller", "category")
	if err != nil {
		return err
	}
	a.bids, err = a.Engine.CreateTable("bids", rubisdb.Schema{
		{Name: "id", Type: rubisdb.TInt64},
		{Name: "user", Type: rubisdb.TInt64},
		{Name: "item", Type: rubisdb.TInt64},
		{Name: "qty", Type: rubisdb.TInt64},
		{Name: "bid", Type: rubisdb.TFloat64},
		{Name: "date", Type: rubisdb.TInt64},
	}, "id", "user", "item")
	if err != nil {
		return err
	}
	a.comments, err = a.Engine.CreateTable("comments", rubisdb.Schema{
		{Name: "id", Type: rubisdb.TInt64},
		{Name: "from_user", Type: rubisdb.TInt64},
		{Name: "to_user", Type: rubisdb.TInt64},
		{Name: "item", Type: rubisdb.TInt64},
		{Name: "rating", Type: rubisdb.TInt64},
		{Name: "text", Type: rubisdb.TString},
	}, "id", "to_user", "item")
	if err != nil {
		return err
	}
	a.buyNow, err = a.Engine.CreateTable("buy_now", rubisdb.Schema{
		{Name: "id", Type: rubisdb.TInt64},
		{Name: "buyer", Type: rubisdb.TInt64},
		{Name: "item", Type: rubisdb.TInt64},
		{Name: "qty", Type: rubisdb.TInt64},
		{Name: "date", Type: rubisdb.TInt64},
	}, "id", "buyer", "item")
	return err
}

// itemDescription is the synthetic description text stored per item;
// its length drives tuple size, page counts, and therefore buffer pool
// behaviour.
const itemDescription = "Lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do " +
	"eiusmod tempor incididunt ut labore et dolore magna aliqua. Ut enim ad minim " +
	"veniam, quis nostrud exercitation ullamco laboris nisi ut aliquip ex ea commodo."

// paddedName formats prefix + zero-padded i exactly like
// fmt.Sprintf(prefix+"%0<width>d", i) but without the fmt machinery: the
// dataset population names a few thousand rows per replication, and the
// sweep runs hundreds of replications.
func paddedName(prefix string, i, width int) string {
	var b [32]byte
	buf := append(b[:0], prefix...)
	start := len(buf)
	n := 1
	for lim := 10; n < width || i >= lim; lim *= 10 {
		n++
	}
	for j := 0; j < n; j++ {
		buf = append(buf, '0')
	}
	for p := len(buf) - 1; p >= start; p-- {
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf)
}

// intBoxes caches boxed int64 values for the dense id ranges the
// dataset generators emit. Every int64 column in a Row is an `any`, so
// naive row building boxes each value through runtime.convT64 — ~10% of
// a sweep's CPU, since population runs per replication. Ids, foreign
// keys, and small draws are all dense non-negative ranges, so one
// grow-on-demand box table serves them all; values outside the cap fall
// back to ordinary boxing.
type intBoxes []any

// populateBoxCap bounds the cache; sequential bid/comment ids are the
// largest dense range (tens of thousands at default scale).
const populateBoxCap = 1 << 20

// newIntBoxes pre-fills boxes for [0, n).
func newIntBoxes(n int) intBoxes {
	b := make(intBoxes, n)
	for i := range b {
		b[i] = int64(i)
	}
	return b
}

// v returns a cached box for v, extending the cache for sequentially
// growing id ranges.
func (b *intBoxes) v(v int64) any {
	if v < 0 || v >= populateBoxCap {
		return v
	}
	for int64(len(*b)) <= v {
		*b = append(*b, int64(len(*b)))
	}
	return (*b)[v]
}

// i boxes an int draw.
func (b *intBoxes) i(v int) any { return b.v(int64(v)) }

// populate loads the dataset through the engine's sorted bulk path:
// every table's rows are generated in primary-key order (the RNG draw
// sequence is identical to row-at-a-time insertion), appended to the
// heap once, and indexed via the B+tree bulk loader — instead of ~60k
// one-at-a-time Insert descents at the start of every replication.
// Int64 values go through the intBoxes cache, so row building does not
// re-box the same dense ids replication after replication.
func (a *App) populate(r *rng.Stream) error {
	cfg := a.Config
	totalItems := cfg.ActiveItems + cfg.OldItems
	box := newIntBoxes(max(cfg.Users, totalItems))
	rows := make([]rubisdb.Row, 0, cfg.Regions)
	for i := 0; i < cfg.Regions; i++ {
		rows = append(rows, rubisdb.Row{box.i(i), paddedName("region-", i, 2)})
	}
	if err := a.regions.BulkInsert(rows); err != nil {
		return err
	}
	rows = make([]rubisdb.Row, 0, cfg.Categories)
	for i := 0; i < cfg.Categories; i++ {
		rows = append(rows, rubisdb.Row{box.i(i), paddedName("category-", i, 2)})
	}
	if err := a.categories.BulkInsert(rows); err != nil {
		return err
	}
	rows = make([]rubisdb.Row, 0, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		rows = append(rows, rubisdb.Row{
			box.i(i),
			paddedName("user", i, 6),
			box.i(r.Intn(cfg.Regions)),
			box.i(r.Intn(10)),
			r.Uniform(0, 1000),
		})
	}
	if err := a.users.BulkInsert(rows); err != nil {
		return err
	}
	a.nextUserID = int64(cfg.Users)

	rows = make([]rubisdb.Row, 0, totalItems)
	for i := 0; i < totalItems; i++ {
		price := r.Uniform(1, 500)
		rows = append(rows, rubisdb.Row{
			box.i(i),
			paddedName("item-", i, 6),
			itemDescription,
			box.i(r.Intn(cfg.Users)),
			box.i(r.Intn(cfg.Categories)),
			price,
			price,
			box.i(0),
			box.i(1 + r.Intn(5)),
			price * 1.6,
			box.i(i % 2), // half "ended", half active (end_date flag)
		})
	}
	if err := a.items.BulkInsert(rows); err != nil {
		return err
	}
	a.nextItemID = int64(totalItems)

	bidID := int64(0)
	rows = rows[:0]
	for i := 0; i < totalItems; i++ {
		n := r.Poisson(float64(cfg.BidsPerItem))
		for b := 0; b < n; b++ {
			rows = append(rows, rubisdb.Row{
				box.v(bidID),
				box.i(r.Intn(cfg.Users)),
				box.i(i),
				box.i(1),
				r.Uniform(1, 800),
				box.i(b),
			})
			bidID++
		}
	}
	if err := a.bids.BulkInsert(rows); err != nil {
		return err
	}
	a.nextBidID = bidID

	commentID := int64(0)
	rows = rows[:0]
	for u := 0; u < cfg.Users; u++ {
		n := r.Poisson(float64(cfg.CommentsPerUser))
		for c := 0; c < n; c++ {
			rows = append(rows, rubisdb.Row{
				box.v(commentID),
				box.i(r.Intn(cfg.Users)),
				box.i(u),
				box.i(r.Intn(totalItems)),
				box.i(r.Intn(10)),
				"Great seller, fast shipping, item exactly as described.",
			})
			commentID++
		}
	}
	if err := a.comments.BulkInsert(rows); err != nil {
		return err
	}
	a.nextCommentID = commentID
	a.nextBuyNowID = 0
	// Warm checkpoint so runtime write-back reflects steady state.
	return a.Engine.Checkpoint()
}

// TotalItems reports how many items exist right now.
func (a *App) TotalItems() int64 { return a.nextItemID }

// TotalUsers reports how many users exist right now.
func (a *App) TotalUsers() int64 { return a.nextUserID }
