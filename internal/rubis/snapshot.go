package rubis

import (
	"sync"

	"vwchar/internal/rng"
	"vwchar/internal/rubisdb"
)

// Snapshot is a populated RUBiS dataset sealed into an immutable golden
// engine snapshot (rubisdb.Golden). Population runs once; every
// replication then attaches a copy-on-write view in microseconds instead
// of rebuilding ~60k rows. A snapshot is safe for concurrent Attach from
// many workers; each view is private until Released back into the
// snapshot's reuse pool.
type Snapshot struct {
	// Config and Seed identify the dataset: population is a pure
	// function of both, which is what makes golden reuse sound.
	Config DatasetConfig
	Seed   uint64

	golden     *rubisdb.Golden
	catWeights []float64
	regWeights []float64

	nextItemID    int64
	nextBidID     int64
	nextCommentID int64
	nextBuyNowID  int64
	nextUserID    int64

	mu   sync.Mutex
	free []*App
}

// NewSnapshot populates the dataset from the derived seed (the stream is
// rng.NewStream(seed), byte-identical to the named substream the fresh
// path would use) and seals it.
func NewSnapshot(cfg DatasetConfig, seed uint64) (*Snapshot, error) {
	a, err := NewApp(cfg, rng.NewStream(seed))
	if err != nil {
		return nil, err
	}
	golden, err := a.Engine.Seal()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Config:        cfg,
		Seed:          seed,
		golden:        golden,
		catWeights:    a.catWeights,
		regWeights:    a.regWeights,
		nextItemID:    a.nextItemID,
		nextBidID:     a.nextBidID,
		nextCommentID: a.nextCommentID,
		nextBuyNowID:  a.nextBuyNowID,
		nextUserID:    a.nextUserID,
	}, nil
}

// Attach returns an App whose engine is a copy-on-write view of the
// golden snapshot, byte-identical in behaviour to a freshly populated
// App. Released apps are recycled, so the steady-state attach path
// allocates nothing.
func (s *Snapshot) Attach() *App {
	s.mu.Lock()
	var a *App
	if n := len(s.free); n > 0 {
		a = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	}
	s.mu.Unlock()
	if a != nil {
		s.golden.Rearm(a.Engine)
	} else {
		e := s.golden.NewView()
		a = &App{
			Engine:     e,
			users:      e.MustTable("users"),
			items:      e.MustTable("items"),
			bids:       e.MustTable("bids"),
			comments:   e.MustTable("comments"),
			buyNow:     e.MustTable("buy_now"),
			categories: e.MustTable("categories"),
			regions:    e.MustTable("regions"),
		}
	}
	a.Config = s.Config
	a.catWeights = s.catWeights
	a.regWeights = s.regWeights
	a.nextItemID = s.nextItemID
	a.nextBidID = s.nextBidID
	a.nextCommentID = s.nextCommentID
	a.nextBuyNowID = s.nextBuyNowID
	a.nextUserID = s.nextUserID
	a.snap = s
	return a
}

// Release returns a view to its snapshot's reuse pool. The caller must
// be done with the App and everything reachable from it; the next Attach
// rewinds the engine in place. Release on a freshly populated (non-view)
// App, or a second Release, is a no-op.
func (a *App) Release() {
	s := a.snap
	if s == nil {
		return
	}
	a.snap = nil
	s.mu.Lock()
	s.free = append(s.free, a)
	s.mu.Unlock()
}

// snapshotKey identifies a golden dataset: its full scale config plus
// the population seed (which already encodes env and replication
// derivation via the experiment's substream names).
type snapshotKey struct {
	cfg  DatasetConfig
	seed uint64
}

type snapshotEntry struct {
	ready   chan struct{}
	snap    *Snapshot
	err     error
	lastUse uint64
}

// snapshotCacheCap bounds retained goldens. A golden holds the full
// dataset (~5-15 MB depending on scale); sweeps that share one dataset
// need exactly one, and unshared sweeps cycle through per-replication
// seeds where caching buys nothing — so a small LRU cap keeps the
// process footprint flat either way.
const snapshotCacheCap = 4

var snapshotCache = struct {
	sync.Mutex
	entries map[snapshotKey]*snapshotEntry
	tick    uint64
}{entries: make(map[snapshotKey]*snapshotEntry)}

// SharedSnapshot returns the process-wide golden snapshot for
// (cfg, seed), populating it exactly once even under concurrent callers
// (single-flight: losers block until the builder finishes). Least
// recently used snapshots are evicted beyond a small cap; evicted
// snapshots stay valid for views still attached to them.
func SharedSnapshot(cfg DatasetConfig, seed uint64) (*Snapshot, error) {
	key := snapshotKey{cfg: cfg, seed: seed}
	snapshotCache.Lock()
	e, ok := snapshotCache.entries[key]
	if ok {
		snapshotCache.tick++
		e.lastUse = snapshotCache.tick
		snapshotCache.Unlock()
		<-e.ready
		return e.snap, e.err
	}
	e = &snapshotEntry{ready: make(chan struct{})}
	snapshotCache.tick++
	e.lastUse = snapshotCache.tick
	snapshotCache.entries[key] = e
	evictSnapshotsLocked()
	snapshotCache.Unlock()

	e.snap, e.err = NewSnapshot(cfg, seed)
	if e.err != nil {
		// Drop the failed entry so a later caller can retry.
		snapshotCache.Lock()
		delete(snapshotCache.entries, key)
		snapshotCache.Unlock()
	}
	close(e.ready)
	return e.snap, e.err
}

// evictSnapshotsLocked drops least-recently-used ready entries until the
// cache fits the cap; in-flight builds are never evicted.
func evictSnapshotsLocked() {
	for len(snapshotCache.entries) > snapshotCacheCap {
		var victim snapshotKey
		var ve *snapshotEntry
		for k, e := range snapshotCache.entries {
			select {
			case <-e.ready:
			default:
				continue
			}
			if ve == nil || e.lastUse < ve.lastUse {
				victim, ve = k, e
			}
		}
		if ve == nil {
			return
		}
		delete(snapshotCache.entries, victim)
	}
}

// SharedApp attaches a view of the process-wide golden snapshot for
// (cfg, seed) — the drop-in replacement for NewApp on replication paths.
// Callers should Release the App when the run completes so the view is
// recycled.
func SharedApp(cfg DatasetConfig, seed uint64) (*App, error) {
	s, err := SharedSnapshot(cfg, seed)
	if err != nil {
		return nil, err
	}
	return s.Attach(), nil
}
