package rubis

// Per-interaction cacheability: which RUBiS pages can be served from a
// memcache-like fragment cache, what entity id keys each fragment, and
// which fragments a write invalidates. The declarations live here — next
// to the interaction definitions — so the cache tier (internal/tiers,
// internal/cachetier) stays ignorant of RUBiS semantics: ExecuteInto
// stamps every Result with its dense kind index, its cache key, and its
// invalidation set, and the serving path consumes them as plain values.
//
// The cacheable set is the read pages whose DB work is a pure function
// of one session focus entity. Transactional read pages (BuyNow, PutBid,
// PutComment) are deliberately not cacheable: they precede writes and a
// stale bid count there would corrupt the write they set up. Static and
// app-tier-cached menu pages have no DB work to cache.

// NumInteractions is the number of distinct RUBiS interaction kinds.
const NumInteractions = 26

// interactionIndex maps each kind to its dense index in
// AllInteractions() order.
var interactionIndex = func() map[Interaction]uint8 {
	m := make(map[Interaction]uint8, NumInteractions)
	for i, k := range AllInteractions() {
		m[k] = uint8(i)
	}
	return m
}()

// Index returns the kind's dense index in AllInteractions() order, or
// -1 for an unknown kind.
func (i Interaction) Index() int {
	if idx, ok := interactionIndex[i]; ok {
		return int(idx)
	}
	return -1
}

// InteractionAt is the inverse of Index; it panics on an out-of-range
// index (a programming error, not an input condition).
func InteractionAt(idx int) Interaction {
	return AllInteractions()[idx]
}

// CacheRef identifies one cacheable page fragment: the interaction kind
// (by dense index) plus the entity id the fragment is keyed on.
type CacheRef struct {
	Kind uint8
	ID   int64
}

// cacheEntity selects which Session focus field keys a fragment.
type cacheEntity uint8

const (
	entNone cacheEntity = iota
	entItem
	entUser
	entToUser
	entCategory
	entRegion
)

func (e cacheEntity) id(sess *Session) int64 {
	switch e {
	case entItem:
		return sess.ItemID
	case entUser:
		return sess.UserID
	case entToUser:
		return sess.ToUserID
	case entCategory:
		return sess.CategoryID
	case entRegion:
		return sess.RegionID
	}
	return 0
}

// cacheEntityByKind declares the cacheable read pages and their key
// entity. Every entry is a page whose DB work depends only on that
// entity; none of them mutates its own key field during execution, so
// the key is stable whether read before or after the interaction runs.
var cacheEntityByKind = func() [NumInteractions]cacheEntity {
	var t [NumInteractions]cacheEntity
	for kind, ent := range map[Interaction]cacheEntity{
		SearchItemsInCategory: entCategory,
		SearchItemsInRegion:   entRegion,
		ViewItem:              entItem,
		ViewUserInfo:          entToUser,
		ViewBidHistory:        entItem,
		AboutMe:               entUser,
	} {
		t[kind.Index()] = ent
	}
	return t
}()

// invalEntry is one fragment a write invalidates: the cached kind and
// the session field carrying the entity id at write time.
type invalEntry struct {
	kind Interaction
	ent  cacheEntity
}

// invalByKind declares the write-side invalidation sets. A write
// invalidates every cached fragment its rows feed: a new bid changes
// the item page, its bid history, and the bidder's AboutMe; a new item
// changes its category's search page and the seller's AboutMe; a new
// comment changes the target user's profile.
var invalByKind = func() [NumInteractions][maxInval]CacheRef {
	decl := map[Interaction][]invalEntry{
		StoreBid:     {{ViewItem, entItem}, {ViewBidHistory, entItem}, {AboutMe, entUser}},
		StoreBuyNow:  {{ViewItem, entItem}},
		StoreComment: {{ViewUserInfo, entToUser}, {AboutMe, entToUser}},
		RegisterItem: {{SearchItemsInCategory, entCategory}, {AboutMe, entUser}},
	}
	var t [NumInteractions][maxInval]CacheRef
	for kind, list := range decl {
		for i, e := range list {
			// The entity selector rides in the ID slot until fillCache
			// resolves it against the live session.
			t[kind.Index()][i] = CacheRef{Kind: uint8(e.kind.Index()) + 1, ID: int64(e.ent)}
		}
	}
	return t
}()

// maxInval bounds the invalidation fan-out of one write.
const maxInval = 3

// fillCache stamps the executed interaction's cache attribution into
// res: the dense kind index, the fragment key when the page is
// cacheable, and the invalidation set when it is a write. Pure — no RNG
// draws, no session mutation — so enabling a cache tier downstream
// never perturbs the workload's random sequence.
func fillCache(res *Result, sess *Session) {
	idx := res.Interaction.Index()
	if idx < 0 {
		return
	}
	res.Kind = uint8(idx)
	if ent := cacheEntityByKind[idx]; ent != entNone {
		res.Cacheable = true
		res.CacheKey = CacheRef{Kind: uint8(idx), ID: ent.id(sess)}
	}
	if res.IsWrite {
		for _, iv := range invalByKind[idx] {
			if iv.Kind == 0 {
				break
			}
			res.Inval[res.NInval] = CacheRef{Kind: iv.Kind - 1, ID: cacheEntity(iv.ID).id(sess)}
			res.NInval++
		}
	}
}

// Cacheable reports whether kind's DB work is declared cacheable.
func Cacheable(kind Interaction) bool {
	idx := kind.Index()
	return idx >= 0 && cacheEntityByKind[idx] != entNone
}

// CacheableInteractions lists the declared cacheable kinds in
// AllInteractions() order.
func CacheableInteractions() []Interaction {
	var out []Interaction
	for i, k := range AllInteractions() {
		if cacheEntityByKind[i] != entNone {
			out = append(out, k)
		}
	}
	return out
}
