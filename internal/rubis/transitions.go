package rubis

import (
	"fmt"
	"math"

	"vwchar/internal/rng"
)

// Mix is a client behaviour model: a Markov chain over interactions plus
// a think-time distribution, as in the RUBiS client emulator's transition
// tables.
type Mix struct {
	// Name identifies the mix ("browsing", "bidding", "70/30", ...).
	Name string
	// ThinkMeanSeconds is the mean of the exponential think time. The
	// paper sets 7 s; the bidding mix's effective think time is longer
	// (form filling), which §4.1 uses to explain its smoother curves.
	ThinkMeanSeconds float64
	// Start is the session entry state.
	Start Interaction

	table map[Interaction][]edge
}

type edge struct {
	to Interaction
	p  float64
}

func buildMix(name string, think float64, rows map[Interaction][]edge) *Mix {
	m := &Mix{Name: name, ThinkMeanSeconds: think, Start: Home, table: rows}
	if err := m.Validate(); err != nil {
		panic(err) // static tables are package data; a bad one is a bug
	}
	return m
}

// Validate checks that all rows are proper distributions over known
// states and that every state is reachable from Start.
func (m *Mix) Validate() error {
	known := make(map[Interaction]bool)
	for _, i := range AllInteractions() {
		known[i] = true
	}
	for from, edges := range m.table {
		if !known[from] {
			return fmt.Errorf("rubis: mix %s has unknown state %q", m.Name, from)
		}
		sum := 0.0
		for _, e := range edges {
			if !known[e.to] {
				return fmt.Errorf("rubis: mix %s: %s -> unknown %q", m.Name, from, e.to)
			}
			if e.p <= 0 {
				return fmt.Errorf("rubis: mix %s: %s -> %s has weight %v", m.Name, from, e.to, e.p)
			}
			sum += e.p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("rubis: mix %s: %s row sums to %v", m.Name, from, sum)
		}
	}
	if _, ok := m.table[m.Start]; !ok {
		return fmt.Errorf("rubis: mix %s start state %q has no row", m.Name, m.Start)
	}
	// Reachability sweep.
	seen := map[Interaction]bool{m.Start: true}
	frontier := []Interaction{m.Start}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, e := range m.table[cur] {
			if !seen[e.to] {
				seen[e.to] = true
				frontier = append(frontier, e.to)
			}
		}
	}
	for from := range m.table {
		if !seen[from] {
			return fmt.Errorf("rubis: mix %s state %q unreachable from %s", m.Name, from, m.Start)
		}
	}
	return nil
}

// States returns the interactions this mix can emit.
func (m *Mix) States() []Interaction {
	var out []Interaction
	for _, i := range AllInteractions() {
		if _, ok := m.table[i]; ok {
			out = append(out, i)
		}
	}
	return out
}

// Next draws the interaction following cur. States without a row (e.g.
// after switching mixes mid-session) restart at Start.
func (m *Mix) Next(cur Interaction, r *rng.Stream) Interaction {
	edges, ok := m.table[cur]
	if !ok {
		return m.Start
	}
	weights := make([]float64, len(edges))
	for i, e := range edges {
		weights[i] = e.p
	}
	return edges[r.Categorical(weights)].to
}

// Think draws a think time in seconds.
func (m *Mix) Think(r *rng.Stream) float64 { return r.Exp(m.ThinkMeanSeconds) }

// BrowsingMix returns the paper's read-only "browsing" composition.
func BrowsingMix() *Mix {
	return buildMix("browsing", 7.0, map[Interaction][]edge{
		Home:                     {{Browse, 1}},
		Browse:                   {{BrowseCategories, 0.55}, {BrowseRegions, 0.45}},
		BrowseCategories:         {{SearchItemsInCategory, 1}},
		BrowseRegions:            {{BrowseCategoriesInRegion, 0.7}, {SearchItemsInRegion, 0.3}},
		BrowseCategoriesInRegion: {{SearchItemsInRegion, 1}},
		SearchItemsInCategory: {
			{ViewItem, 0.5}, {SearchItemsInCategory, 0.3}, {Browse, 0.2}},
		SearchItemsInRegion: {
			{ViewItem, 0.5}, {SearchItemsInRegion, 0.3}, {Browse, 0.2}},
		ViewItem: {
			{ViewUserInfo, 0.25}, {ViewBidHistory, 0.25},
			{SearchItemsInCategory, 0.3}, {Browse, 0.2}},
		ViewUserInfo: {
			{SearchItemsInCategory, 0.5}, {Browse, 0.3}, {ViewItem, 0.2}},
		ViewBidHistory: {
			{ViewItem, 0.4}, {SearchItemsInCategory, 0.4}, {Browse, 0.2}},
	})
}

// BiddingMix returns the paper's "bidding" composition (the RUBiS
// default read-write mix, ~10-15% writes).
func BiddingMix() *Mix {
	return buildMix("bidding", 8.4, map[Interaction][]edge{
		Home:                     {{Browse, 0.85}, {Register, 0.06}, {Sell, 0.05}, {AboutMe, 0.04}},
		Register:                 {{RegisterUser, 1}},
		RegisterUser:             {{Browse, 0.6}, {Home, 0.4}},
		Browse:                   {{BrowseCategories, 0.6}, {BrowseRegions, 0.4}},
		BrowseCategories:         {{SearchItemsInCategory, 1}},
		BrowseRegions:            {{BrowseCategoriesInRegion, 0.6}, {SearchItemsInRegion, 0.4}},
		BrowseCategoriesInRegion: {{SearchItemsInRegion, 1}},
		SearchItemsInCategory: {
			{ViewItem, 0.55}, {SearchItemsInCategory, 0.25}, {Browse, 0.2}},
		SearchItemsInRegion: {
			{ViewItem, 0.55}, {SearchItemsInRegion, 0.25}, {Browse, 0.2}},
		ViewItem: {
			{PutBidAuth, 0.32}, {BuyNowAuth, 0.1}, {ViewUserInfo, 0.1},
			{ViewBidHistory, 0.13}, {SearchItemsInCategory, 0.22}, {Browse, 0.13}},
		ViewUserInfo: {
			{PutCommentAuth, 0.2}, {SearchItemsInCategory, 0.42},
			{Browse, 0.23}, {ViewItem, 0.15}},
		ViewBidHistory: {
			{ViewItem, 0.4}, {SearchItemsInCategory, 0.4}, {Browse, 0.2}},
		BuyNowAuth:  {{BuyNow, 1}},
		BuyNow:      {{StoreBuyNow, 0.65}, {ViewItem, 0.35}},
		StoreBuyNow: {{Browse, 0.5}, {Home, 0.3}, {AboutMe, 0.2}},
		PutBidAuth:  {{PutBid, 1}},
		PutBid:      {{StoreBid, 0.8}, {ViewItem, 0.2}},
		StoreBid: {
			{Browse, 0.5}, {SearchItemsInCategory, 0.3}, {AboutMe, 0.2}},
		PutCommentAuth:           {{PutComment, 1}},
		PutComment:               {{StoreComment, 0.85}, {ViewItem, 0.15}},
		StoreComment:             {{Browse, 0.6}, {Home, 0.4}},
		Sell:                     {{SelectCategoryToSellItem, 0.7}, {SellItemForm, 0.3}},
		SelectCategoryToSellItem: {{SellItemForm, 1}},
		SellItemForm:             {{RegisterItem, 0.9}, {Sell, 0.1}},
		RegisterItem:             {{Browse, 0.5}, {Sell, 0.2}, {AboutMe, 0.3}},
		AboutMe:                  {{Browse, 0.6}, {ViewItem, 0.25}, {Home, 0.15}},
	})
}

// CompositeMix interleaves the browsing and bidding chains: each step
// follows the browsing table with probability browseFraction, else the
// bidding table. The paper's 30/70, 50/50 and 70/30 compositions are
// instances.
type CompositeMix struct {
	Name           string
	BrowseFraction float64
	browse, bid    *Mix
}

// NewCompositeMix builds an interleaved mix.
func NewCompositeMix(browseFraction float64) *CompositeMix {
	if browseFraction < 0 || browseFraction > 1 {
		panic(fmt.Sprintf("rubis: browse fraction %v out of [0,1]", browseFraction))
	}
	return &CompositeMix{
		Name:           fmt.Sprintf("%d%%browse-%d%%bid", int(browseFraction*100+0.5), int((1-browseFraction)*100+0.5)),
		BrowseFraction: browseFraction,
		browse:         BrowsingMix(),
		bid:            BiddingMix(),
	}
}

// Model is the behaviour interface the workload driver consumes.
type Model interface {
	// MixName identifies the composition for reports.
	MixName() string
	// NextInteraction draws the state after cur.
	NextInteraction(cur Interaction, r *rng.Stream) Interaction
	// ThinkSeconds draws a think time.
	ThinkSeconds(r *rng.Stream) float64
	// StartState is the session entry interaction.
	StartState() Interaction
}

// MixName implements Model.
func (m *Mix) MixName() string { return m.Name }

// NextInteraction implements Model.
func (m *Mix) NextInteraction(cur Interaction, r *rng.Stream) Interaction {
	return m.Next(cur, r)
}

// ThinkSeconds implements Model.
func (m *Mix) ThinkSeconds(r *rng.Stream) float64 { return m.Think(r) }

// StartState implements Model.
func (m *Mix) StartState() Interaction { return m.Start }

// MixName implements Model.
func (c *CompositeMix) MixName() string { return c.Name }

// NextInteraction implements Model.
func (c *CompositeMix) NextInteraction(cur Interaction, r *rng.Stream) Interaction {
	if r.Bernoulli(c.BrowseFraction) {
		return c.browse.Next(cur, r)
	}
	return c.bid.Next(cur, r)
}

// ThinkSeconds implements Model.
func (c *CompositeMix) ThinkSeconds(r *rng.Stream) float64 {
	mean := c.BrowseFraction*c.browse.ThinkMeanSeconds + (1-c.BrowseFraction)*c.bid.ThinkMeanSeconds
	return r.Exp(mean)
}

// StartState implements Model.
func (c *CompositeMix) StartState() Interaction { return Home }
