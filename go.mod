module vwchar

go 1.24
