package vwchar_test

import (
	"bytes"
	"strings"
	"testing"

	"vwchar"
)

// scaledPair runs a fast browse+bid pair for API-level tests.
func scaledPair(t *testing.T, env vwchar.Env, seed uint64) *vwchar.Pair {
	t.Helper()
	pair, err := vwchar.RunPairScaled(env, seed, 200, 90)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func TestPublicAPIEndToEnd(t *testing.T) {
	virt := scaledPair(t, vwchar.Virtualized, 42)
	phys := scaledPair(t, vwchar.Physical, 142)

	// Figures 1-4 from the virtualized pair, 5-8 from the physical pair.
	for id := 1; id <= 8; id++ {
		pair := virt
		if id >= 5 {
			pair = phys
		}
		fig, err := vwchar.BuildFigure(id, pair.Browse, pair.Bid)
		if err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		var buf bytes.Buffer
		if err := vwchar.RenderFigure(&buf, fig); err != nil {
			t.Fatalf("render figure %d: %v", id, err)
		}
		if !strings.Contains(buf.String(), "browse") {
			t.Fatalf("figure %d rendering lacks legend", id)
		}
		buf.Reset()
		if err := vwchar.WriteFigureCSV(&buf, fig); err != nil {
			t.Fatalf("csv figure %d: %v", id, err)
		}
		if !strings.Contains(buf.String(), "time_s") {
			t.Fatalf("figure %d csv lacks header", id)
		}
	}

	rep := vwchar.Characterize(virt, phys)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Front-end / back-end") {
		t.Fatal("report incomplete")
	}

	// The windowed telemetry pipeline reaches the public surface: the
	// per-window series exist, export as one aligned CSV table, and
	// feed the transient analysis.
	tel := virt.Browse.Telemetry
	if tel == nil || tel.Windows() == 0 {
		t.Fatal("run has no windowed telemetry")
	}
	if got, want := len(vwchar.TelemetrySeriesNames()), len(tel.All()); got != want {
		t.Fatalf("series names %d vs series %d", got, want)
	}
	buf.Reset()
	if err := vwchar.WriteTelemetryCSV(&buf, virt.Browse); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "latency_p95_ms") || !strings.Contains(buf.String(), "time_s") {
		t.Fatal("telemetry csv incomplete")
	}
	tr := vwchar.AnalyzeTransient(tel.LatencyP95, vwchar.TransientConfig{})
	if tr.PeakP95 <= 0 {
		t.Fatal("transient analysis saw no latency")
	}
	if tr.Saturated() {
		t.Fatalf("steady closed-loop run should not cross 10x steady p95: %+v", tr)
	}
}

func TestHeadlineDirectionsAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled directional check skipped in -short mode")
	}
	virt := scaledPair(t, vwchar.Virtualized, 7)
	phys := scaledPair(t, vwchar.Physical, 107)

	tier := vwchar.TierRatios(virt.Browse)
	if tier.CPU <= 1 || tier.Network <= 1 {
		t.Fatalf("front end should dominate: %+v", tier)
	}
	vmdom := vwchar.VMToDom0Ratios(virt.Browse)
	if vmdom.CPU <= 1 {
		t.Fatalf("VM cycle counters should exceed dom0: %+v", vmdom)
	}
	if vmdom.Disk >= 1 {
		t.Fatalf("dom0 should perform more disk I/O than VMs observe: %+v", vmdom)
	}
	env := vwchar.EnvAggregateRatios(virt.Browse, phys.Browse)
	if env.CPU <= 1 {
		t.Fatalf("non-virt should demand more CPU than dom0: %+v", env)
	}
	delta := vwchar.PhysicalDelta(virt.Browse, phys.Browse)
	if delta.CPU <= 0 {
		t.Fatalf("non-virt physical CPU demand should exceed virt: %+v", delta)
	}
}

func TestTable1API(t *testing.T) {
	rows := vwchar.Table1()
	if len(rows) < 30 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	if vwchar.TotalProfiledMetrics() != 518 {
		t.Fatalf("total metrics = %d, want 518", vwchar.TotalProfiledMetrics())
	}
	var buf bytes.Buffer
	if err := vwchar.WriteTable1(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFigureSpecsCoverAllEight(t *testing.T) {
	specs := vwchar.FigureSpecs()
	if len(specs) != 8 {
		t.Fatalf("specs = %d", len(specs))
	}
	virtCount := 0
	for _, s := range specs {
		if s.Env == vwchar.Virtualized {
			virtCount++
		}
	}
	if virtCount != 4 {
		t.Fatalf("virtualized figures = %d, want 4", virtCount)
	}
}

func TestMixSweepCompositions(t *testing.T) {
	// The paper's five compositions all run; spot-check one composite.
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.Mix50Browse)
	cfg.Clients = 120
	cfg.Duration = 60 * 1e9
	r, err := vwchar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("composite mix served nothing")
	}
	if r.WriteFraction <= 0 {
		t.Fatal("50/50 mix should include writes")
	}
}
