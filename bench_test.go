// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the headline ratio analyses and ablations. Each
// benchmark runs a scaled browse+bid experiment pair (250 clients, 120 s
// of virtual time — same dynamics, smaller wall-clock) and rebuilds the
// corresponding artifact; run `go run ./cmd/figures` for the full-scale
// 1000-client, 600-sample reproduction.
package vwchar_test

import (
	"bytes"
	"io"
	"testing"

	"vwchar"
	"vwchar/internal/rubis"
	"vwchar/internal/sim"
	"vwchar/internal/xen"
)

// benchPair runs the browse+bid pair for env at benchmark scale.
func benchPair(b *testing.B, env vwchar.Env, seed uint64) *vwchar.Pair {
	b.Helper()
	pair, err := vwchar.RunPairScaled(env, seed, 250, 120)
	if err != nil {
		b.Fatal(err)
	}
	return pair
}

func benchFigure(b *testing.B, id int, env vwchar.Env) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		pair := benchPair(b, env, uint64(42+i))
		fig, err := vwchar.BuildFigure(id, pair.Browse, pair.Bid)
		if err != nil {
			b.Fatal(err)
		}
		if err := vwchar.WriteFigureCSV(io.Discard, fig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Catalog regenerates Table 1 (the 518-metric inventory
// sample).
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := vwchar.WriteTable1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1CPUVirtualized regenerates Figure 1: CPU cycle demand
// of web+app VM, MySQL VM, and dom0 under browse and bid mixes.
func BenchmarkFigure1CPUVirtualized(b *testing.B) { benchFigure(b, 1, vwchar.Virtualized) }

// BenchmarkFigure2RAMVirtualized regenerates Figure 2: RAM demand in VMs
// and the hypervisor.
func BenchmarkFigure2RAMVirtualized(b *testing.B) { benchFigure(b, 2, vwchar.Virtualized) }

// BenchmarkFigure3DiskVirtualized regenerates Figure 3: disk read+write
// in VMs and the hypervisor.
func BenchmarkFigure3DiskVirtualized(b *testing.B) { benchFigure(b, 3, vwchar.Virtualized) }

// BenchmarkFigure4NetworkVirtualized regenerates Figure 4: network
// received+transmitted in VMs and the hypervisor.
func BenchmarkFigure4NetworkVirtualized(b *testing.B) { benchFigure(b, 4, vwchar.Virtualized) }

// BenchmarkFigure5CPUPhysical regenerates Figure 5: CPU cycle demand on
// the two physical servers.
func BenchmarkFigure5CPUPhysical(b *testing.B) { benchFigure(b, 5, vwchar.Physical) }

// BenchmarkFigure6RAMPhysical regenerates Figure 6: RAM demand on the
// physical servers.
func BenchmarkFigure6RAMPhysical(b *testing.B) { benchFigure(b, 6, vwchar.Physical) }

// BenchmarkFigure7DiskPhysical regenerates Figure 7: disk read+write on
// the physical servers.
func BenchmarkFigure7DiskPhysical(b *testing.B) { benchFigure(b, 7, vwchar.Physical) }

// BenchmarkFigure8NetworkPhysical regenerates Figure 8: network traffic
// on the physical servers.
func BenchmarkFigure8NetworkPhysical(b *testing.B) { benchFigure(b, 8, vwchar.Physical) }

// BenchmarkTierRatios reproduces §4.1's front-end/back-end demand ratios
// (paper: 6.11 CPU, 3.29 RAM, 5.71 disk, 55.56 network).
func BenchmarkTierRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pair := benchPair(b, vwchar.Virtualized, uint64(42+i))
		r := vwchar.TierRatios(pair.Browse)
		if r.CPU <= 1 {
			b.Fatalf("tier cpu ratio = %v", r.CPU)
		}
	}
}

// BenchmarkVMDom0Ratios reproduces §4.1's VM-aggregate/dom0 ratios
// (paper: 16.84, 0.58, 0.47, 0.98).
func BenchmarkVMDom0Ratios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pair := benchPair(b, vwchar.Virtualized, uint64(42+i))
		r := vwchar.VMToDom0Ratios(pair.Browse)
		if r.CPU <= 1 {
			b.Fatalf("vm/dom0 cpu ratio = %v", r.CPU)
		}
	}
}

// BenchmarkEnvRatios reproduces §4.2's non-virtualized/virtualized
// aggregate ratios (paper: 3.47, 0.97, 0.6, 0.98).
func BenchmarkEnvRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		virt := benchPair(b, vwchar.Virtualized, uint64(42+i))
		phys := benchPair(b, vwchar.Physical, uint64(142+i))
		r := vwchar.EnvAggregateRatios(virt.Browse, phys.Browse)
		if r.CPU <= 0 {
			b.Fatalf("env cpu ratio = %v", r.CPU)
		}
	}
}

// BenchmarkPhysicalDelta reproduces §4.2's physical-demand deltas
// (paper: +88% CPU, +21% RAM, +2% network, -25% disk).
func BenchmarkPhysicalDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		virt := benchPair(b, vwchar.Virtualized, uint64(42+i))
		phys := benchPair(b, vwchar.Physical, uint64(142+i))
		d := vwchar.PhysicalDelta(virt.Browse, phys.Browse)
		if d.CPU <= -1 {
			b.Fatalf("delta = %+v", d)
		}
	}
}

// BenchmarkTierLag reproduces §4.1's inter-tier lag analysis.
func BenchmarkTierLag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pair := benchPair(b, vwchar.Virtualized, uint64(42+i))
		rep := vwchar.Characterize(pair, pair)
		_ = rep.LagBrowse
	}
}

// BenchmarkRAMJumps reproduces the RAM jump detection of Figures 2/6.
func BenchmarkRAMJumps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pair := benchPair(b, vwchar.Virtualized, uint64(42+i))
		rep := vwchar.Characterize(pair, pair)
		_ = rep.WebJumpsBrowseVirt
	}
}

// BenchmarkDiskVariance reproduces §4.2's disk variance comparison.
func BenchmarkDiskVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		virt := benchPair(b, vwchar.Virtualized, uint64(42+i))
		phys := benchPair(b, vwchar.Physical, uint64(142+i))
		rep := vwchar.Characterize(virt, phys)
		if rep.DiskCoVPhys <= 0 {
			b.Fatal("no phys disk variance")
		}
	}
}

// BenchmarkMixSweep runs all five request compositions of §4 (the paper
// reports browse-only and bid-only; 30/70, 50/50, 70/30 were also
// tested).
func BenchmarkMixSweep(b *testing.B) {
	mixes := []vwchar.MixKind{
		vwchar.MixBrowsing, vwchar.MixBidding,
		vwchar.Mix30Browse, vwchar.Mix50Browse, vwchar.Mix70Browse,
	}
	for i := 0; i < b.N; i++ {
		for _, mix := range mixes {
			cfg := vwchar.DefaultConfig(vwchar.Virtualized, mix)
			cfg.Clients = 150
			cfg.Duration = 60 * sim.Second
			cfg.Seed = uint64(42 + i)
			if _, err := vwchar.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// sweepSpec is the paper's full experiment grid — both deployments
// crossed with all five request compositions — replicated 10 times per
// point, at benchmark scale (the dataset is shrunk so one replication
// is dominated by simulation rather than dataset population).
func sweepSpec(workers, replications int) vwchar.SweepSpec {
	return vwchar.SweepSpec{
		Points: vwchar.FullSweepGrid(func(c *vwchar.Config) {
			c.Clients = 40
			c.Duration = 30 * sim.Second
			c.Dataset.Users = 2000
			c.Dataset.ActiveItems = 600
			c.Dataset.OldItems = 1300
			c.Dataset.BufferPages = 500
		}),
		Replications: replications,
		RootSeed:     42,
		Workers:      workers,
		// One golden dataset for the whole grid: population runs once and
		// every replication attaches a copy-on-write view, which is what
		// keeps these sweep benchmarks dominated by simulation instead of
		// dataset rebuilds.
		SharedDatasets: true,
	}
}

func sweepTable(tb testing.TB, spec vwchar.SweepSpec) []byte {
	sr, err := vwchar.Sweep(spec)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sr.WriteTable(&buf); err != nil {
		tb.Fatal(err)
	}
	if buf.Len() == 0 {
		tb.Fatal("empty sweep table")
	}
	return buf.Bytes()
}

// BenchmarkSweepWorkers1 and BenchmarkSweepWorkers8 time the full
// 2-env × 5-mix × 10-replication sweep (100 isolated sim kernels)
// sequentially and on an 8-worker pool. The jobs are independent and
// CPU-bound, so on an 8-core host the 8-worker run completes >=4x
// faster; TestFullSweepByteIdenticalAcrossWorkers pins that the
// aggregated output bytes are nevertheless identical.
func BenchmarkSweepWorkers1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = sweepTable(b, sweepSpec(1, 10))
	}
}

func BenchmarkSweepWorkers8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = sweepTable(b, sweepSpec(8, 10))
	}
}

// TestFullSweepByteIdenticalAcrossWorkers runs the full 10-point grid
// at workers=1 and workers=8 and requires byte-identical aggregated
// output. One replication at reduced scale keeps the two sweeps cheap
// under -race on small CI runners; seed derivation is per-job, so
// neither replication count nor scale affects the property (the
// runner's own regression test covers multi-replication grids).
func TestFullSweepByteIdenticalAcrossWorkers(t *testing.T) {
	spec := func(workers int) vwchar.SweepSpec {
		s := sweepSpec(workers, 1)
		for i := range s.Points {
			s.Points[i].Config.Clients = 20
			s.Points[i].Config.Duration = 20 * sim.Second
		}
		return s
	}
	seq := sweepTable(t, spec(1))
	par := sweepTable(t, spec(8))
	if !bytes.Equal(seq, par) {
		t.Fatalf("aggregated sweep output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

// BenchmarkAblationNoSplitDriver runs the virtualized stack with the
// split-driver backend costs zeroed — the ablation DESIGN.md calls out
// for the dom0 overhead mechanism. dom0's CPU demand collapses to its
// own management activity, quantifying how much of the hypervisor's
// measured load is I/O backend work (nearly all of it).
func BenchmarkAblationNoSplitDriver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		params := xen.DefaultParams()
		params.NetbackCyclesPerByte = 0
		params.BlkbackCyclesPerByte = 0
		params.PerIOBackendCycles = 0
		params.FsyncBackendCycles = 0
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Clients = 250
		cfg.Duration = 120 * sim.Second
		cfg.Seed = uint64(42 + i)
		cfg.XenParams = &params
		ablated, err := vwchar.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		baseline := benchPair(b, vwchar.Virtualized, uint64(42+i)).Browse
		if ablated.CPU(vwchar.TierDom0).Mean() >= baseline.CPU(vwchar.TierDom0).Mean() {
			b.Fatal("removing split-driver costs should reduce dom0 CPU")
		}
	}
}

// BenchmarkWorkloadModel exercises the paper's future-work extension:
// fit the resource-level workload model and the transaction-level
// footprints, then predict tier demand for an unprofiled composition.
func BenchmarkWorkloadModel(b *testing.B) {
	pair := benchPair(b, vwchar.Virtualized, 42)
	for i := 0; i < b.N; i++ {
		wm, err := vwchar.FitWorkloadModel(pair.Browse)
		if err != nil {
			b.Fatal(err)
		}
		if len(wm.Keys()) == 0 {
			b.Fatal("empty workload model")
		}
		ds := vwchar.DefaultDataset()
		ds.Users = 2000
		ds.ActiveItems = 600
		ds.OldItems = 1000
		tm, err := vwchar.FitTransactionModel(ds, 10, uint64(7+i))
		if err != nil {
			b.Fatal(err)
		}
		pred := tm.Predict(vwchar.BiddingModel(), 140, 100000, 9)
		if pred.WebCyclesPer2s <= 0 {
			b.Fatal("empty prediction")
		}
	}
}

// BenchmarkOpenLoopDriver measures a full open-loop experiment — the
// bursty MMPP scenario through the virtualized stack with session
// churn — at the same scale as the closed-loop figure benchmarks, so
// the two driver paths stay comparable across PRs.
func BenchmarkOpenLoopDriver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, err := vwchar.LoadScenario("bursty")
		if err != nil {
			b.Fatal(err)
		}
		spec.Rate = 4
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Duration = 120 * sim.Second
		cfg.Seed = uint64(42 + i)
		cfg.Load = &spec
		res, err := vwchar.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sessions == nil || res.Sessions.Started == 0 {
			b.Fatal("open-loop benchmark served no sessions")
		}
	}
}

// BenchmarkSnapshotAttach measures the per-replication dataset cost
// after the golden snapshot exists: attach a copy-on-write view, release
// it back to the reuse pool. The steady-state path must be
// allocation-free (CI gates on 0 allocs/op) — this is the number that
// replaced ~60k engine operations of population per replication.
func BenchmarkSnapshotAttach(b *testing.B) {
	cfg := rubis.DefaultDataset()
	cfg.Users = 2000
	cfg.ActiveItems = 600
	cfg.OldItems = 1300
	cfg.BufferPages = 500
	snap, err := rubis.NewSnapshot(cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	// First attach builds the view; releasing it seeds the reuse pool so
	// the timed loop measures the recycled rearm path every iteration.
	snap.Attach().Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Attach().Release()
	}
}

// BenchmarkEngineOnly measures the storage engine in isolation (queries
// per second without the simulation harness): the DB-tier ablation.
func BenchmarkEngineOnly(b *testing.B) {
	// Warm-up run: pays one-time process costs outside the timed loop
	// and sanity-checks that the scaled configuration actually serves
	// traffic before it is benchmarked.
	pair, err := vwchar.RunPairScaled(vwchar.Virtualized, 1, 10, 10)
	if err != nil {
		b.Fatal(err)
	}
	if pair.Browse.Completed == 0 || pair.Bid.Completed == 0 {
		b.Fatalf("warm-up pair served no requests (browse=%d bid=%d)",
			pair.Browse.Completed, pair.Bid.Completed)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh scaled run exercises dataset population (~60k engine
		// operations) plus the query mix.
		if _, err := vwchar.RunPairScaled(vwchar.Virtualized, uint64(i), 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}
