// Cascade: correlated failures and overload-adaptive degradation on
// the replicated cluster. Two experiments:
//
//  1. Load-coupled cascade. The crash hazard couples failure to load:
//     whenever a web replica's utilization crosses the threshold at a
//     window boundary, it crashes with fixed probability. A crash
//     shifts the closed-loop population onto the survivors, raising
//     THEIR utilization — the classic correlated-failure spiral. Run
//     once bare, the spiral feeds itself: crashes keep firing and the
//     run never re-enters SLO. Run again with the brownout controller,
//     degraded answers bleed load before utilization reaches the
//     hazard threshold, the spiral is cut, and the cluster stabilizes.
//     The cascade analysis (blast radius, cascade depth, time-to-
//     stabilize) quantifies the difference.
//
//  2. Autoscaler vs failure. A web replica dies for good while the
//     autoscaler holds spare capacity. The sweep crosses the scaler's
//     detection window (consecutive violating windows before it acts)
//     with its boot delay, and reports what each combination costs in
//     lost requests and peak p95 — the repair-race the correlated-
//     failure study cares about: detection + boot must beat the
//     hazard's compounding.
//
// Everything replays byte-identically under the same -seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vwchar"
	"vwchar/internal/plot"
	"vwchar/internal/sim"
)

func main() {
	clients := flag.Int("clients", 4000, "closed-loop client population (sized to overload one replica)")
	duration := flag.Float64("duration", 120, "run length in seconds")
	seed := flag.Uint64("seed", 7, "experiment seed (cascades replay byte-identically)")
	sloMillis := flag.Float64("slo-ms", 500, "latency SLO for the analyses (ms)")
	flag.Parse()

	topo := &vwchar.Topology{
		WebReplicas:    2,
		MaxWebReplicas: 2,
		DBReadReplicas: 1,
		Machines:       2,
		LB:             vwchar.LBJoinShortestQueue,
	}

	// -- Experiment 1: load-coupled cascade vs brownout ----------------
	// The population is sized so one replica alone is over capacity.
	// When replica 1 dies, the whole crowd lands on the survivor and
	// its resident count climbs toward the thousands — past the hazard
	// trip point of eight pool-depths (512 resident over the 64-worker
	// pool) — and the survivor crashes too: total loss, load-coupled.
	// Repairs dump replicas back into the same crowd, so the bare run
	// keeps collapsing.
	sched := &vwchar.FaultSchedule{
		WebCrash: &vwchar.FaultComponent{AtSeconds: 20, MTTRSeconds: 15, Targets: []int{1}},
		Hazard: &vwchar.HazardSpec{
			UtilThreshold: 8,
			CrashProb:     0.5,
			MTTRSeconds:   20,
		},
	}

	runOne := func(name string, res *vwchar.ResilienceSpec) *vwchar.Result {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Clients = *clients
		cfg.Duration = sim.Seconds(*duration)
		cfg.Seed = *seed
		cfg.Topology = topo
		cfg.Faults = sched
		cfg.Resilience = res
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		r, err := vwchar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	bareRes := vwchar.DefaultResilience()
	bare := runOne("load-coupled cascade, no controller", &bareRes)

	// The controller enters degraded mode half a pool deep, sheds
	// optional reads, and bounds every replica's resident count at one
	// pool — far below the hazard's eight-pool trip point, so the
	// survivor soaks the crowd without ever arming the hazard. The one
	// window of lag before the bound engages is why the trip point must
	// sit above the first window's transient.
	ctlRes := vwchar.DefaultResilience()
	ctlRes.Brownout = &vwchar.BrownoutSpec{
		EnterUtil:    0.5,
		ExitUtil:     0.1,
		DropFraction: 0.5,
		MaxLevel:     2,
		QueueBound:   64,
	}
	controlled := runOne("load-coupled cascade, brownout controller", &ctlRes)

	fmt.Printf("== load-coupled cascade: replica 1 dies at t=20 s, hazard armed ==\n\n")
	var bareA, ctlA vwchar.CascadeAnalysis
	for _, row := range []struct {
		name string
		r    *vwchar.Result
		out  *vwchar.CascadeAnalysis
	}{{"no controller", bare, &bareA}, {"brownout controller", controlled, &ctlA}} {
		*row.out = vwchar.AnalyzeCascade(row.r, *sloMillis)
		fmt.Printf("-- %s --\n", row.name)
		if err := row.out.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if err := plot.Render(os.Stdout, plot.DefaultOptions("response-time p95 per 2 s window", "ms"),
		bare.Telemetry.LatencyP95.Clone("no controller"),
		controlled.Telemetry.LatencyP95.Clone("brownout")); err != nil {
		log.Fatal(err)
	}

	// The cascade must be real, and the controller must actually cut it.
	if bareA.HazardCrashes == 0 {
		log.Fatal("the hazard never fired in the bare run — the cascade is vacuous")
	}
	if bareA.CascadeDepth < 2 {
		log.Fatal("crashes never compounded in the bare run — no cascade to cut")
	}
	if ctlA.DroppedOptional+ctlA.DegradedRequests == 0 {
		log.Fatal("the brownout controller never degraded anything — the comparison is vacuous")
	}
	if ctlA.HazardCrashes >= bareA.HazardCrashes {
		log.Fatal("the controller did not reduce load-induced crashes")
	}
	if !ctlA.Stabilized {
		log.Fatal("the controlled run did not stabilize by the horizon")
	}
	fmt.Printf("\nhazard crashes: %d bare vs %d controlled; blast radius %d vs %d; ",
		bareA.HazardCrashes, ctlA.HazardCrashes, bareA.BlastRadius, ctlA.BlastRadius)
	fmt.Printf("time-to-stabilize %.1f s vs %.1f s\n", bareA.TimeToStabilizeSec, ctlA.TimeToStabilizeSec)

	// -- Experiment 2: autoscaler vs failure ---------------------------
	// Replica 1 of 2 dies for good at t=30 s; two spare replicas are
	// provisioned but cold. How fast the scaler converts spares into
	// capacity is detection (violating windows x 2 s each) plus boot.
	fmt.Printf("\n== autoscaler vs failure: replica dies at t=30 s, spares are cold ==\n\n")
	fmt.Printf("%-10s %-10s %-12s %-10s %-10s\n", "detect", "boot(s)", "lost", "peak p95", "avail")

	type cell struct {
		detect, boot int
		lost         uint64
		peak         float64
	}
	var best, worst *cell
	for _, detect := range []int{1, 2, 4} {
		for _, boot := range []int{5, 20, 40} {
			cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
			cfg.Clients = *clients
			cfg.Duration = sim.Seconds(*duration)
			cfg.Seed = *seed
			cfg.Faults = &vwchar.FaultSchedule{
				WebCrash: &vwchar.FaultComponent{AtSeconds: 30, Targets: []int{1}}, // permanent
			}
			res := vwchar.DefaultResilience()
			cfg.Resilience = &res
			cfg.Topology = &vwchar.Topology{
				WebReplicas:    2,
				MaxWebReplicas: 4,
				DBReadReplicas: 1,
				Machines:       2,
				LB:             vwchar.LBJoinShortestQueue,
				Autoscaler: &vwchar.AutoscalerSpec{
					SLOMillis:        *sloMillis,
					ScaleUpWindows:   detect,
					BootSeconds:      float64(boot),
					CooldownSeconds:  10,
					ScaleDownWindows: 1000, // never drain mid-experiment
				},
			}
			if err := cfg.Validate(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "running detect=%d boot=%ds...\n", detect, boot)
			r, err := vwchar.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			rq := r.Requests
			a := vwchar.AnalyzeAvailability(r, *sloMillis)
			c := &cell{detect, boot, rq.TimedOut + rq.Shed + rq.Failed, r.Telemetry.LatencyP95.Max()}
			fmt.Printf("%-10d %-10d %-12d %-10.0f %-10.4f\n", detect, boot, c.lost, c.peak, a.Delivered)
			if best == nil || c.lost < best.lost {
				best = c
			}
			if worst == nil || c.lost > worst.lost {
				worst = c
			}
		}
	}
	if worst.lost == 0 {
		log.Fatal("no combination lost anything — the failure was vacuous")
	}
	if best.lost >= worst.lost {
		log.Fatal("detection window and boot delay made no difference")
	}
	fmt.Printf("\nbest cell (detect %d, boot %d s) lost %d requests; worst (detect %d, boot %d s) lost %d.\n",
		best.detect, best.boot, best.lost, worst.detect, worst.boot, worst.lost)
	fmt.Println("detection and boot delay compose: the scaler must win the race against the")
	fmt.Println("queue the dead replica leaves behind. Note the long-detection rows: during")
	fmt.Println("the collapse every request times out, timed-out requests complete nothing,")
	fmt.Println("and zero-throughput windows carry no p95 signal — so a detection streak")
	fmt.Println("long enough to be starved by the outage it watches for never fires at all.")
	fmt.Println("Rerun with the same -seed to replay the identical timeline.")
}
