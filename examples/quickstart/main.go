// Quickstart: run the paper's two headline experiments (browse-only and
// bid-only RUBiS on a virtualized host) at reduced scale and print what
// the paper's Figure 1 shows — the three CPU demand curves — plus the
// front-end/back-end demand ratios.
package main

import (
	"fmt"
	"log"
	"os"

	"vwchar"
)

func main() {
	// 300 clients for 5 virtual minutes: same dynamics as the paper's
	// 1000-client, 20-minute runs, a few seconds of wall clock.
	pair, err := vwchar.RunPairScaled(vwchar.Virtualized, 42, 300, 300)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("browse: %d requests, mean response %.1f ms\n",
		pair.Browse.Completed, pair.Browse.MeanRespTime*1e3)
	fmt.Printf("bid:    %d requests, mean response %.1f ms (%.0f%% writes)\n\n",
		pair.Bid.Completed, pair.Bid.MeanRespTime*1e3, pair.Bid.WriteFraction*100)

	fig, err := vwchar.BuildFigure(1, pair.Browse, pair.Bid)
	if err != nil {
		log.Fatal(err)
	}
	if err := vwchar.RenderFigure(os.Stdout, fig); err != nil {
		log.Fatal(err)
	}

	ratios := vwchar.TierRatios(pair.Browse)
	fmt.Printf("\nfront-end vs back-end demand (paper: 6.11 cpu, 3.29 ram, 5.71 disk, 55.56 net):\n")
	fmt.Printf("  cpu %.2fx   ram %.2fx   disk %.2fx   net %.2fx\n",
		ratios.CPU, ratios.RAM, ratios.Disk, ratios.Network)
}
