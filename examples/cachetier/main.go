// Cachetier: the cache and write-behind queue tiers under stress.
// Three experiments on the virtualized testbed:
//
//  1. Thundering herd. A flash crowd rides over TTL expiries of the
//     hottest keys (hot-key-expiry scenario, short TTL, a hot dataset
//     with few categories/regions). Mid-crowd the DB host starts
//     limping (4x CPU demand) and the cache cold-restarts: the whole
//     crowd mass-misses onto a DB that is already queueing, fill
//     windows stretch, and every request that finds a key expired
//     fetches it independently — the stampede series spikes, the DB
//     sees a fall-through load storm, and the windowed p95 shows the
//     knee. The same run with single-flight leases sends one fetch
//     per expired key and parks the herd on the fill, cutting the
//     redundant DB fetches and the herd-window latency knee.
//
//  2. Per-interaction attribution. The same run broken down by RUBiS
//     interaction kind: which request types the cache serves, at what
//     hit ratio, and what their latency looks like.
//
//  3. Write-behind backlog. A 10x write burst (backlog-drain
//     scenario, bidding mix) publishes into the broker faster than
//     the drain replays it; the backlog absorbs the burst, lag peaks,
//     and the drain works it off after the burst passes.
//
// Everything is seed-deterministic: rerunning with the same -seed
// replays every stampede and every drain batch identically.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vwchar"
	"vwchar/internal/sim"
)

func main() {
	duration := flag.Float64("duration", 300, "run length in seconds")
	seed := flag.Uint64("seed", 42, "experiment seed")
	ttl := flag.Float64("ttl", 1, "cache TTL in seconds (short, so the flash crowd rides over expiries)")
	herdScale := flag.Float64("herd-scale", 2, "rate multiplier on the hot-key-expiry scenario (pushes the DB into queueing so fills widen)")
	flag.Parse()

	// The herd experiment concentrates the heat: few categories and
	// regions make the search fragments genuinely hot, and a small
	// buffer pool keeps DB fills slow enough that a flash crowd lands
	// inside the fill window of an expired key.
	hotset := vwchar.DefaultDataset()
	hotset.Categories = 5
	hotset.Regions = 8
	hotset.BufferPages = 250

	runOne := func(loadName string, rateScale float64, mix vwchar.MixKind, dataset vwchar.DatasetConfig, cache *vwchar.CacheSpec, queue *vwchar.QueueSpec) *vwchar.Result {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, mix)
		cfg.Duration = sim.Seconds(*duration)
		cfg.Seed = *seed
		cfg.Dataset = dataset
		spec, err := vwchar.LoadScenario(loadName)
		if err != nil {
			log.Fatal(err)
		}
		spec.Rate *= rateScale
		cfg.Load = &spec
		cfg.Cache = cache
		cfg.Queue = queue
		if loadName == "hot-key-expiry" {
			// Two machines, round-robin placement: web + cache on
			// machine 0, DB on machine 1. Fault injection can then limp
			// the DB host without touching the serving tiers.
			cfg.Topology = &vwchar.Topology{Machines: 2}
		}
		if cache != nil {
			// Crash the cache in the middle of the flash crowd: the
			// restart is a cold cache, so the whole crowd mass-misses at
			// once — the synchronized herd the leases exist for. The DB
			// host limps (4x CPU demand) through the same window, so the
			// fall-through storm lands on a DB that is already queueing
			// and fill windows stretch.
			cfg.Faults = &vwchar.FaultSchedule{
				CacheCrash: &vwchar.FaultComponent{AtSeconds: 180, MTTRSeconds: 2},
				SlowNode:   &vwchar.FaultComponent{AtSeconds: 170, MTTRSeconds: 80, Value: 4, Targets: []int{1}},
			}
		}
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		res, err := vwchar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	herdSpec := func(leases bool) *vwchar.CacheSpec {
		s := vwchar.DefaultCacheSpec()
		s.TTLSeconds = *ttl
		s.Leases = leases
		return &s
	}

	fmt.Println("=== 1. Thundering herd: hot-key expiry under a flash crowd ===")
	fmt.Println()
	baseline := runOne("hot-key-expiry", *herdScale, vwchar.MixBrowsing, hotset, nil, nil)
	noLease := runOne("hot-key-expiry", *herdScale, vwchar.MixBrowsing, hotset, herdSpec(false), nil)
	withLease := runOne("hot-key-expiry", *herdScale, vwchar.MixBrowsing, hotset, herdSpec(true), nil)

	aNo := vwchar.AnalyzeCache(noLease)
	aLease := vwchar.AnalyzeCache(withLease)

	fmt.Printf("no cache:      p95 %6.1f ms, DB cpu %.3g cyc/2s (peak %.3g)\n",
		baseline.P95RespTime*1e3, baseline.CPU(vwchar.TierDB).Mean(), baseline.CPU(vwchar.TierDB).Max())
	fmt.Printf("cache:         p95 %6.1f ms, DB cpu %.3g cyc/2s (peak %.3g)\n",
		noLease.P95RespTime*1e3, noLease.CPU(vwchar.TierDB).Mean(), noLease.CPU(vwchar.TierDB).Max())
	fmt.Printf("cache+leases:  p95 %6.1f ms, DB cpu %.3g cyc/2s (peak %.3g)\n",
		withLease.P95RespTime*1e3, withLease.CPU(vwchar.TierDB).Mean(), withLease.CPU(vwchar.TierDB).Max())
	fmt.Println()
	fmt.Print("without leases: ")
	must(aNo.Write(os.Stdout))
	fmt.Print("with leases:    ")
	must(aLease.Write(os.Stdout))
	fmt.Println()
	// The knee is localized: the herd lives in the fault window (DB
	// host limping from 170 s, cache cold-restarted at 180 s), so the
	// whole-run p95 dilutes it. Compare the windowed p95 there.
	herdP95 := func(r *vwchar.Result) float64 {
		s := r.Telemetry.LatencyP95
		peak := 0.0
		for i := 0; i < s.Len(); i++ {
			if t := s.TimeAt(i); t >= 170 && t <= 255 && s.At(i) > peak {
				peak = s.At(i)
			}
		}
		return peak
	}
	if aNo.StampedeFetches > 0 {
		cut := 1 - float64(aLease.StampedeFetches)/float64(aNo.StampedeFetches)
		fmt.Printf("leases cut redundant herd fetches %d -> %d (%.0f%%); herd-window p95 %.0f ms -> %.0f ms\n",
			aNo.StampedeFetches, aLease.StampedeFetches, cut*100, herdP95(noLease), herdP95(withLease))
	}
	fmt.Println()

	fmt.Println("=== 2. Per-interaction cache attribution (leased run) ===")
	fmt.Println()
	fmt.Printf("%-24s %8s %9s %9s %10s\n", "interaction", "count", "mean ms", "p95 ms", "hit ratio")
	for _, il := range withLease.PerInteraction {
		if il.Count == 0 {
			continue
		}
		ratio := "      -"
		if looked := il.CacheHits + il.CacheMisses; looked > 0 {
			ratio = fmt.Sprintf("%6.1f%%", 100*float64(il.CacheHits)/float64(looked))
		}
		fmt.Printf("%-24s %8d %9.1f %9.1f %10s\n", il.Kind, il.Count, il.MeanMs, il.P95Ms, ratio)
	}
	fmt.Println()

	fmt.Println("=== 3. Write-behind backlog: 10x write burst ===")
	fmt.Println()
	// A deliberately slow drain (small batches, 2 s apart) so the burst
	// visibly outruns the replay capacity and the backlog builds.
	slowDrain := vwchar.DefaultQueueSpec()
	slowDrain.BatchSize = 4
	slowDrain.DrainEveryMillis = 2000

	direct := runOne("backlog-drain", 2, vwchar.MixBidding, vwchar.DefaultDataset(), nil, nil)
	queued := runOne("backlog-drain", 2, vwchar.MixBidding, vwchar.DefaultDataset(), nil, &slowDrain)
	aQ := vwchar.AnalyzeCache(queued)

	fmt.Printf("direct writes: p95 %6.1f ms\n", direct.P95RespTime*1e3)
	fmt.Printf("write-behind:  p95 %6.1f ms\n", queued.P95RespTime*1e3)
	fmt.Printf("queue: %d published / %d drained (%d overflows, %d redeliveries)\n",
		aQ.Published, aQ.Drained, aQ.Overflows, aQ.Redeliveries)
	fmt.Printf("backlog: peak depth %d writes, max lag %.0f ms, drained in %.0f s after the peak\n",
		aQ.PeakDepth, aQ.MaxLagMs, aQ.BacklogDrainSec)
}

func ptr[T any](v T) *T { return &v }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
