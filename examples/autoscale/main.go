// Autoscale: the flash crowd from examples/flash_crowd, but with the
// telemetry loop closed. The paper profiles a fixed 1-web/1-DB pair, so
// an open-loop spike has nowhere to go but the queue: p95 detaches from
// CPU and the abandonment SLO converts the excess into lost sessions.
// This example runs the same flash-crowd scenario twice — once at the
// paper's fixed capacity and once with web-replica headroom behind a
// load balancer and a reactive autoscaler watching the windowed p95 —
// and reports time-to-scale and the SLO debt each run accrued.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vwchar"
	"vwchar/internal/plot"
	"vwchar/internal/sim"
)

func main() {
	rate := flag.Float64("rate", 12, "base arrival rate in sessions/s (spike peaks at 8x)")
	duration := flag.Float64("duration", 600, "run length in seconds (spike hits at t=300)")
	seed := flag.Uint64("seed", 42, "experiment seed")
	maxReplicas := flag.Int("max-replicas", 4, "web replica headroom for the autoscaler")
	sloMillis := flag.Float64("slo-ms", 500, "latency SLO (windowed p95, ms)")
	policy := flag.String("policy", "reactive", "autoscaler policy: reactive | predictive")
	flag.Parse()

	crowd, err := vwchar.LoadScenario("flash-crowd")
	if err != nil {
		log.Fatal(err)
	}
	crowd.Rate = *rate

	runOne := func(name string, topo *vwchar.Topology) *vwchar.Result {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Duration = sim.Seconds(*duration)
		cfg.Seed = *seed
		load := crowd
		cfg.Load = &load
		cfg.Topology = topo
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		res, err := vwchar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fixed := runOne("fixed capacity (paper's pair)", nil)
	// The knobs matter against a 30 s arrival ramp: two violating 2 s
	// windows to detect, 10 s to boot, so the second replica takes
	// traffic while the spike is still ramping. The long drain streak
	// keeps the scaler from flapping capacity away mid-spike.
	scaled := runOne("autoscaled cluster", &vwchar.Topology{
		WebReplicas:    1,
		MaxWebReplicas: *maxReplicas,
		LB:             vwchar.LBLeastInFlight,
		Autoscaler: &vwchar.AutoscalerSpec{
			Policy:           *policy,
			SLOMillis:        *sloMillis,
			BootSeconds:      10,
			CooldownSeconds:  10,
			ScaleDownWindows: 45,
		},
	})

	fmt.Printf("flash crowd at %.3g sessions/s base (spike: 8x for 120 s at t=300), SLO %.0f ms:\n\n", *rate, *sloMillis)
	analyses := make(map[string]vwchar.ScalingAnalysis, 2)
	for _, row := range []struct {
		name string
		res  *vwchar.Result
	}{{"fixed", fixed}, {"autoscaled", scaled}} {
		a := vwchar.AnalyzeScaling(row.res, *sloMillis)
		analyses[row.name] = a
		fmt.Printf("-- %s --\n", row.name)
		if err := a.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// The per-window p95 traces side by side: the fixed run's spike
	// rides the queue until the arrival ramp drains; the autoscaled
	// run's spike is cut short when the second (third, ...) replica
	// finishes booting and the load balancer spreads the crowd.
	p95Fixed := fixed.Telemetry.LatencyP95.Clone("fixed")
	p95Scaled := scaled.Telemetry.LatencyP95.Clone("autoscaled")
	if err := plot.Render(os.Stdout, plot.DefaultOptions("response-time p95 per 2 s window", "ms"), p95Fixed, p95Scaled); err != nil {
		log.Fatal(err)
	}

	if rep := scaled.Telemetry.Replicas; rep != nil {
		fmt.Println()
		if err := plot.Render(os.Stdout, plot.DefaultOptions("active web replicas", "replicas"), rep.Clone("replicas")); err != nil {
			log.Fatal(err)
		}
	}

	fa, sa := analyses["fixed"], analyses["autoscaled"]
	fmt.Println()
	fmt.Printf("peak p95: fixed %.0f ms vs autoscaled %.0f ms (%.1fx lower)\n",
		fa.PeakP95, sa.PeakP95, safeRatio(fa.PeakP95, sa.PeakP95))
	fmt.Printf("SLO debt: fixed %.1f s vs autoscaled %.1f s; sessions lost: %d vs %d\n",
		fa.TotalDebtSec(), sa.TotalDebtSec(), fa.DrivenAway, sa.DrivenAway)
	if !sa.Scaled() {
		log.Fatal("the autoscaler never fired — raise -rate or lower -slo-ms")
	}
	if sa.PeakP95 >= fa.PeakP95 {
		log.Fatal("autoscaling did not reduce the peak p95 — raise -max-replicas or check the policy")
	}

	fmt.Println("\nthe fixed pair absorbs the spike as queueing and churn; the autoscaled run")
	fmt.Println("pays the detection streak plus the boot delay (time-to-scale above), then the")
	fmt.Println("load balancer spreads the crowd and the p95 falls back toward the SLO. The")
	fmt.Println("debt split shows what the added capacity bought: less demand served slowly,")
	fmt.Println("and fewer sessions driven away.")
}

// safeRatio guards the headline ratio against a zero denominator.
func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
