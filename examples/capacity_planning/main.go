// Capacity planning: the use case the paper's introduction motivates.
// Sweep the client population on the virtualized deployment and find the
// largest population whose p95 response time still meets an SLA — the
// "support applications with the right hardware" decision.
package main

import (
	"fmt"
	"log"

	"vwchar"
	"vwchar/internal/sim"
)

const slaP95Millis = 60.0

func main() {
	fmt.Printf("SLA: p95 response time <= %.0f ms (virtualized, browsing mix)\n\n", slaP95Millis)
	fmt.Printf("%8s %12s %12s %14s %10s\n", "clients", "req/s", "p95 (ms)", "webCPU (c/2s)", "SLA")

	lastOK := 0
	for _, clients := range []int{200, 400, 800, 1200, 1600, 2000, 2400} {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Clients = clients
		cfg.Duration = 180 * sim.Second
		res, err := vwchar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		p95 := res.P95RespTime * 1e3
		ok := p95 <= slaP95Millis
		if ok {
			lastOK = clients
		}
		verdict := "meets"
		if !ok {
			verdict = "VIOLATES"
		}
		fmt.Printf("%8d %12.1f %12.2f %14.3g %10s\n",
			clients,
			float64(res.Completed)/cfg.Duration.Sec(),
			p95,
			res.CPU(vwchar.TierWeb).Mean(),
			verdict)
	}

	fmt.Printf("\nplanning result: one web VM + one DB VM on a single host sustains ~%d clients within SLA.\n", lastOK)
	fmt.Println("Beyond the knee, the web tier's worker pool saturates and queueing inflates p95 —")
	fmt.Println("exactly the capacity-planning signal the paper argues workload characterization enables.")
}
