// Capacity planning: the use case the paper's introduction motivates.
// Sweep the client population on the virtualized deployment — every
// population in parallel, each replicated with independent seeds — and
// find the largest population whose p95 response time still meets an
// SLA with its whole confidence interval: the "support applications
// with the right hardware" decision, made against variance rather than
// a single lucky run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vwchar"
	"vwchar/internal/sim"
)

const slaP95Millis = 60.0

func main() {
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	replications := flag.Int("replications", 3, "replications per population")
	seed := flag.Uint64("seed", 42, "root seed")
	flag.Parse()

	populations := []int{200, 400, 800, 1200, 1600, 2000, 2400}
	points := make([]vwchar.SweepPoint, 0, len(populations))
	for _, clients := range populations {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Clients = clients
		cfg.Duration = 180 * sim.Second
		points = append(points, vwchar.SweepPoint{
			Name:   fmt.Sprintf("clients-%04d", clients),
			Config: cfg,
		})
	}
	// A partial failure still yields aggregates over the surviving
	// replications; print those before reporting the error.
	sr, err := vwchar.Sweep(vwchar.SweepSpec{
		Points:       points,
		Replications: *replications,
		RootSeed:     *seed,
		Workers:      *workers,
		OnProgress: func(p vwchar.SweepProgress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s rep %d\n", p.Done, p.Total, p.Job.Point, p.Job.Rep)
		},
	})
	if sr == nil {
		log.Fatal(err)
	}

	fmt.Printf("SLA: p95 response time <= %.0f ms (virtualized, browsing mix, %d replications)\n\n",
		slaP95Millis, *replications)
	fmt.Printf("%8s %12s %18s %14s %10s\n", "clients", "req/s", "p95 ms (±CI95)", "webCPU (c/2s)", "SLA")

	lastOK := 0
	for i := range sr.Points {
		pr := &sr.Points[i]
		p95 := pr.Metric(vwchar.MetricRespP95)
		if p95.N == 0 {
			// No surviving replications: an absent measurement must not
			// read as 0 ms and pass the SLA.
			fmt.Printf("%8d %12s %18s %14s %10s\n",
				pr.Point.Config.Clients, "-", "-", "-", "NO DATA")
			continue
		}
		// Meeting the SLA means the whole confidence interval is under
		// the limit, not just the mean.
		ok := p95.Mean+p95.CI95 <= slaP95Millis
		if ok {
			lastOK = pr.Point.Config.Clients
		}
		verdict := "meets"
		if !ok {
			verdict = "VIOLATES"
		}
		fmt.Printf("%8d %12.1f %10.2f ± %-5.2f %14.3g %10s\n",
			pr.Point.Config.Clients,
			pr.Metric(vwchar.MetricThroughput).Mean,
			p95.Mean, p95.CI95,
			pr.Metric(vwchar.MetricCPU(vwchar.TierWeb)).Mean,
			verdict)
	}

	fmt.Printf("\nplanning result: one web VM + one DB VM on a single host sustains ~%d clients within SLA.\n", lastOK)
	fmt.Println("Beyond the knee, the web tier's worker pool saturates and queueing inflates p95 —")
	fmt.Println("exactly the capacity-planning signal the paper argues workload characterization enables.")
	if err != nil {
		log.Fatal(err)
	}
}
