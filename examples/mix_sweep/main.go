// Mix sweep: the paper tested five request compositions (browse-only,
// bid-only, 30/70, 50/50, 70/30) but had space to report only two. This
// example runs all five and tabulates the per-tier demand, showing how
// the composition dial moves each resource — including the paper's
// observation that bidding costs the *hypervisor* more while costing the
// VMs less.
package main

import (
	"fmt"
	"log"

	"vwchar"
	"vwchar/internal/sim"
)

func main() {
	mixes := []vwchar.MixKind{
		vwchar.MixBrowsing,
		vwchar.Mix70Browse,
		vwchar.Mix50Browse,
		vwchar.Mix30Browse,
		vwchar.MixBidding,
	}
	fmt.Printf("%-10s %9s %8s %12s %12s %12s %10s %10s\n",
		"mix", "req/s", "writes", "webCPU", "dbCPU", "dom0CPU", "webNetKB", "dbDiskKB")
	for _, mix := range mixes {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, mix)
		cfg.Clients = 500
		cfg.Duration = 240 * sim.Second
		res, err := vwchar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9.1f %7.1f%% %12.3g %12.3g %12.3g %10.0f %10.0f\n",
			mix,
			float64(res.Completed)/cfg.Duration.Sec(),
			res.WriteFraction*100,
			res.CPU(vwchar.TierWeb).Mean(),
			res.CPU(vwchar.TierDB).Mean(),
			res.CPU(vwchar.TierDom0).Mean(),
			res.Net(vwchar.TierWeb).Mean(),
			res.Disk(vwchar.TierDB).Mean(),
		)
	}
	fmt.Println("\nReading the table: as the bid share rises, VM-visible CPU and network fall")
	fmt.Println("(fewer, smaller pages at a longer think time) while DB disk rises (writes,")
	fmt.Println("journal flushes) — the bid-heavy compositions land more physical work on dom0")
	fmt.Println("per unit of VM-visible demand, the paper's §4.1 observation.")
}
