// Mix sweep: the paper tested five request compositions (browse-only,
// bid-only, 30/70, 50/50, 70/30) but had space to report only two. This
// example runs all five through the parallel sweep runner, replicating
// each composition with independent seeds, and tabulates the per-tier
// demand as mean ± 95% CI — showing how the composition dial moves each
// resource, including the paper's observation that bidding costs the
// *hypervisor* more while costing the VMs less.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vwchar"
	"vwchar/internal/sim"
)

func main() {
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	replications := flag.Int("replications", 3, "replications per mix")
	seed := flag.Uint64("seed", 42, "root seed")
	flag.Parse()

	// A partial failure still yields aggregates over the surviving
	// replications; print those before reporting the error.
	sr, err := vwchar.Sweep(vwchar.SweepSpec{
		Points: vwchar.SweepGrid([]vwchar.Env{vwchar.Virtualized}, vwchar.Mixes(),
			func(c *vwchar.Config) {
				c.Clients = 500
				c.Duration = 240 * sim.Second
			}),
		Replications: *replications,
		RootSeed:     *seed,
		Workers:      *workers,
		OnProgress: func(p vwchar.SweepProgress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s rep %d\n", p.Done, p.Total, p.Job.Point, p.Job.Rep)
		},
	})
	if sr == nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %16s %8s %12s %12s %12s %10s %10s\n",
		"mix", "req/s (±CI95)", "writes", "webCPU", "dbCPU", "dom0CPU", "webNetKB", "dbDiskKB")
	for i := range sr.Points {
		pr := &sr.Points[i]
		rps := pr.Metric(vwchar.MetricThroughput)
		if rps.N == 0 {
			fmt.Printf("%-10s   (no surviving replications)\n", pr.Point.Config.Mix)
			continue
		}
		fmt.Printf("%-10s %9.1f ± %-4.1f %7.1f%% %12.3g %12.3g %12.3g %10.0f %10.0f\n",
			pr.Point.Config.Mix,
			rps.Mean, rps.CI95,
			pr.Metric(vwchar.MetricWriteFrac).Mean*100,
			pr.Metric(vwchar.MetricCPU(vwchar.TierWeb)).Mean,
			pr.Metric(vwchar.MetricCPU(vwchar.TierDB)).Mean,
			pr.Metric(vwchar.MetricCPU(vwchar.TierDom0)).Mean,
			pr.Metric(vwchar.MetricNet(vwchar.TierWeb)).Mean,
			pr.Metric(vwchar.MetricDisk(vwchar.TierDB)).Mean,
		)
	}
	fmt.Println("\nReading the table: as the bid share rises, VM-visible CPU and network fall")
	fmt.Println("(fewer, smaller pages at a longer think time) while DB disk rises (writes,")
	fmt.Println("journal flushes) — the bid-heavy compositions land more physical work on dom0")
	fmt.Println("per unit of VM-visible demand, the paper's §4.1 observation.")
	if err != nil {
		log.Fatal(err)
	}
}
