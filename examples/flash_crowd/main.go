// Flash crowd: what the paper's testbed does when demand does NOT
// self-throttle. The paper drives RUBiS with a fixed closed-loop
// population, so offered load falls as response times grow; an open-loop
// flash crowd keeps arriving regardless, which is what exposes demand
// saturation. This example replays the catalog's flash-crowd scenario
// (base rate, 8x spike, 5 s abandonment SLO) against a steady Poisson
// baseline at the same base rate, and shows where the spike's demand
// goes: web-tier CPU, queueing (p95), and session churn (abandonment).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vwchar"
	"vwchar/internal/plot"
	"vwchar/internal/sim"
)

func main() {
	rate := flag.Float64("rate", 12, "base arrival rate in sessions/s (spike peaks at 8x)")
	duration := flag.Float64("duration", 600, "run length in seconds (spike hits at t=300)")
	seed := flag.Uint64("seed", 42, "experiment seed")
	flag.Parse()

	crowd, err := vwchar.LoadScenario("flash-crowd")
	if err != nil {
		log.Fatal(err)
	}
	crowd.Rate = *rate

	steady, err := vwchar.LoadScenario("steady")
	if err != nil {
		log.Fatal(err)
	}
	steady.Rate = *rate

	runOne := func(name string, spec vwchar.LoadSpec) *vwchar.Result {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Duration = sim.Seconds(*duration)
		cfg.Seed = *seed
		cfg.Load = &spec
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		res, err := vwchar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := runOne("steady baseline", steady)
	spiked := runOne("flash crowd", crowd)

	fmt.Printf("flash crowd vs steady at %.3g sessions/s base (spike: 8x for 120 s at t=300):\n\n", *rate)
	fmt.Printf("%-14s %10s %12s %12s %12s %10s %10s\n",
		"scenario", "req/s", "p95 ms", "started", "abandoned", "peak", "growths")
	for _, row := range []struct {
		name string
		res  *vwchar.Result
	}{{"steady", base}, {"flash-crowd", spiked}} {
		s := row.res.Sessions
		fmt.Printf("%-14s %10.1f %12.1f %12d %12d %10d %10d\n",
			row.name,
			float64(row.res.Completed)/row.res.Config.Duration.Sec(),
			row.res.P95RespTime*1e3,
			s.Started, s.Abandoned, s.PeakActive, row.res.WebGrowths)
	}

	// The web tier's CPU trace is where the spike lands first: demand
	// tracks the arrival trapezoid until workers saturate, then the
	// excess shows up as queueing (p95) and abandoned sessions instead
	// of additional cycles — saturation by churn, not by throughput.
	fmt.Println()
	webSteady := base.CPU(vwchar.TierWeb).Clone("steady")
	webCrowd := spiked.CPU(vwchar.TierWeb).Clone("flash-crowd")
	if err := plot.Render(os.Stdout, plot.DefaultOptions("web-tier CPU demand", "cycles/2s"), webSteady, webCrowd); err != nil {
		log.Fatal(err)
	}

	// The windowed telemetry is what the run-level scalar above cannot
	// show: p95 over time, window for window against the CPU series.
	// The spike rises orders of magnitude above the steady baseline,
	// holds while the worker pool is saturated, and drains once the
	// arrival rate ramps back down.
	fmt.Println()
	p95Steady := base.Telemetry.LatencyP95.Clone("steady")
	p95Crowd := spiked.Telemetry.LatencyP95.Clone("flash-crowd")
	if err := plot.Render(os.Stdout, plot.DefaultOptions("response-time p95 per 2 s window", "ms"), p95Steady, p95Crowd); err != nil {
		log.Fatal(err)
	}

	tr := vwchar.AnalyzeTransient(spiked.Telemetry.LatencyP95, vwchar.TransientConfig{})
	fmt.Println()
	if err := tr.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if !tr.Saturated() {
		log.Fatal("flash crowd never crossed 10x the steady p95 — lower -rate or check the scenario")
	}
	if ref := vwchar.AnalyzeTransient(base.Telemetry.LatencyP95, vwchar.TransientConfig{}); ref.Saturated() {
		fmt.Println("(note: the steady baseline also saturated; raise capacity or lower -rate)")
	}

	fmt.Println("\nthe steady run holds its demand flat; the flash crowd's web CPU follows the")
	fmt.Println("arrival trapezoid until the worker pool saturates, after which queueing sends")
	fmt.Println("the per-window p95 past 10x its steady value and the abandonment SLO converts")
	fmt.Println("the excess into session churn — the open-loop failure mode a closed-loop")
	fmt.Println("population can never exhibit, now visible as a time series rather than a")
	fmt.Println("single run-level number.")
}
