// Consolidation: the paper's testbed "hosts up to ten VMs" per server,
// and its motivation is resource planning for exactly this decision —
// how many application instances can share one physical host. This
// example co-locates 1..5 RUBiS instances (two VMs each) on the Xen
// host, running all consolidation levels in parallel with replicated
// seeds, and tabulates what consolidation does to dom0's physical
// demand and to per-instance response times.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vwchar"
	"vwchar/internal/sim"
)

func main() {
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	replications := flag.Int("replications", 3, "replications per consolidation level")
	seed := flag.Uint64("seed", 42, "root seed")
	flag.Parse()

	var points []vwchar.SweepPoint
	for pairs := 1; pairs <= 5; pairs++ {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Clients = 300
		cfg.Duration = 180 * sim.Second
		cfg.Pairs = pairs
		points = append(points, vwchar.SweepPoint{
			Name:   fmt.Sprintf("pairs-%d", pairs),
			Config: cfg,
		})
	}
	// A partial failure still yields aggregates over the surviving
	// replications; print those before reporting the error.
	sr, err := vwchar.Sweep(vwchar.SweepSpec{
		Points:       points,
		Replications: *replications,
		RootSeed:     *seed,
		Workers:      *workers,
		OnProgress: func(p vwchar.SweepProgress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s rep %d\n", p.Done, p.Total, p.Job.Point, p.Job.Rep)
		},
	})
	if sr == nil {
		log.Fatal(err)
	}

	fmt.Printf("consolidating RUBiS instances on one 8-core host (300 clients each, browsing, %d replications):\n",
		*replications)
	fmt.Printf("%7s %6s %10s %14s %18s %12s\n",
		"pairs", "VMs", "req/s", "dom0 cyc/2s", "p95 ms (±CI95)", "dom0 memMB")
	for i := range sr.Points {
		pr := &sr.Points[i]
		pairs := pr.Point.Config.Pairs
		p95 := pr.Metric(vwchar.MetricRespP95)
		if p95.N == 0 {
			fmt.Printf("%7d %6d   (no surviving replications)\n", pairs, pairs*2)
			continue
		}
		fmt.Printf("%7d %6d %10.1f %14.3g %10.2f ± %-5.2f %12.0f\n",
			pairs, pairs*2,
			pr.Metric(vwchar.MetricThroughput).Mean,
			pr.Metric(vwchar.MetricCPU(vwchar.TierDom0)).Mean,
			p95.Mean, p95.CI95,
			pr.Metric(vwchar.MetricMem(vwchar.TierDom0)).Mean)
	}
	fmt.Println("\ndom0's backend work scales with the aggregate I/O of all guests — the")
	fmt.Println("virtualization overhead the paper measures is per-host, not per-VM, which is")
	fmt.Println("what makes its characterization the input to consolidation planning.")
	if err != nil {
		log.Fatal(err)
	}
}
