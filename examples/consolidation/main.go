// Consolidation: the paper's testbed "hosts up to ten VMs" per server,
// and its motivation is resource planning for exactly this decision —
// how many application instances can share one physical host. This
// example co-locates 1..5 RUBiS instances (two VMs each) on the Xen host
// and tabulates what consolidation does to dom0's physical demand and to
// per-instance response times.
package main

import (
	"fmt"
	"log"

	"vwchar"
	"vwchar/internal/sim"
)

func main() {
	fmt.Println("consolidating RUBiS instances on one 8-core host (300 clients each, browsing):")
	fmt.Printf("%7s %6s %10s %14s %14s %12s\n",
		"pairs", "VMs", "req/s", "dom0 cyc/2s", "p95 ms (1st)", "dom0 memMB")
	for pairs := 1; pairs <= 5; pairs++ {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
		cfg.Clients = 300
		cfg.Duration = 180 * sim.Second
		cfg.Pairs = pairs
		res, err := vwchar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d %6d %10.1f %14.3g %14.2f %12.0f\n",
			pairs, pairs*2,
			float64(res.Completed)/cfg.Duration.Sec(),
			res.CPU(vwchar.TierDom0).Mean(),
			res.PairStats[0].P95RespTime*1e3,
			res.Mem(vwchar.TierDom0).Mean())
	}
	fmt.Println("\ndom0's backend work scales with the aggregate I/O of all guests — the")
	fmt.Println("virtualization overhead the paper measures is per-host, not per-VM, which is")
	fmt.Println("what makes its characterization the input to consolidation planning.")
}
