// Chaos: fault injection against the guarded serving path. Two
// experiments on the replicated cluster:
//
//  1. Retry storm. The population is sized so one web replica alone
//     is over capacity. When its peer crashes, the survivor's queue
//     crosses the guard timeout, timeouts trigger retries, and the
//     retries amplify the very overload that caused them — the
//     metastable failure mode. The same posture with a circuit
//     breaker converts the excess into fast sheds instead, keeping
//     the survivor's queue (and the served p95) bounded. The example
//     contrasts retry amplification, peak windowed p95, and delivered
//     availability.
//
//  2. Primary failover. The DB primary dies for good under a
//     write-carrying load; the health monitor waits out the detection
//     window, promotes the read replica, and the path swap keeps
//     read-your-writes intact. The example reports the measured
//     time-to-failover and the availability analysis of the outage.
//
// Every fault is drawn from the experiment seed: rerunning with the
// same -seed replays the identical timeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vwchar"
	"vwchar/internal/plot"
	"vwchar/internal/sim"
)

func main() {
	clients := flag.Int("clients", 2400, "closed-loop client population (sized to overload one replica)")
	duration := flag.Float64("duration", 300, "run length in seconds")
	seed := flag.Uint64("seed", 42, "experiment seed (faults replay byte-identically)")
	sloMillis := flag.Float64("slo-ms", 500, "latency SLO for the availability analysis (ms)")
	flag.Parse()

	topo := &vwchar.Topology{
		WebReplicas:    2,
		MaxWebReplicas: 2,
		DBReadReplicas: 1,
		Machines:       2,
		LB:             vwchar.LBJoinShortestQueue,
	}

	runOne := func(name string, mix vwchar.MixKind, sched *vwchar.FaultSchedule, res *vwchar.ResilienceSpec) *vwchar.Result {
		cfg := vwchar.DefaultConfig(vwchar.Virtualized, mix)
		cfg.Clients = *clients
		cfg.Duration = sim.Seconds(*duration)
		cfg.Seed = *seed
		cfg.Topology = topo
		cfg.Faults = sched
		cfg.Resilience = res
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		r, err := vwchar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	// -- Experiment 1: retry storm vs circuit breaker ------------------
	// Replica 1 crashes at t=100 s and repairs 60 s later. Health
	// checks eject it quickly, so the survivor takes the whole
	// population — more than it can serve. Queueing pushes latency
	// past the 800 ms timeout, every timeout spawns retries, and with
	// an effectively unbounded retry budget the amplified load keeps
	// the survivor pinned: the storm.
	storm := &vwchar.FaultSchedule{
		WebCrash: &vwchar.FaultComponent{AtSeconds: 100, MTTRSeconds: 60, Targets: []int{1}},
	}
	aggressive := vwchar.ResilienceSpec{
		TimeoutMillis:      800,
		Retries:            3,
		BackoffMillis:      50,
		RetryBudget:        4, // deliberately unbounded-ish: the storm
		HealthEverySeconds: 1,
		EjectAfterChecks:   2,
	}
	braked := aggressive
	braked.Breaker = &vwchar.BreakerSpec{ErrorThreshold: 0.5, WindowRequests: 32, OpenMillis: 500}

	noBrk := runOne("retry storm, no breaker", vwchar.MixBrowsing, storm, &aggressive)
	withBrk := runOne("retry storm, breaker", vwchar.MixBrowsing, storm, &braked)

	fmt.Printf("== retry storm: web replica down t=100..160 s, aggressive retries ==\n\n")
	for _, row := range []struct {
		name string
		r    *vwchar.Result
	}{{"no breaker", noBrk}, {"breaker", withBrk}} {
		a := vwchar.AnalyzeAvailability(row.r, *sloMillis)
		fmt.Printf("-- %s --\n", row.name)
		if err := a.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("peak windowed p95: %.0f ms\n\n", row.r.Telemetry.LatencyP95.Max())
	}

	if err := plot.Render(os.Stdout, plot.DefaultOptions("response-time p95 per 2 s window", "ms"),
		noBrk.Telemetry.LatencyP95.Clone("no breaker"),
		withBrk.Telemetry.LatencyP95.Clone("breaker")); err != nil {
		log.Fatal(err)
	}

	stormRetries := noBrk.Guard.Retries
	brakedRetries := withBrk.Guard.Retries
	if stormRetries == 0 {
		log.Fatal("the storm run never retried — the fault was vacuous")
	}
	if brakedRetries >= stormRetries {
		log.Fatal("the breaker did not reduce retry volume")
	}
	stormPeak := noBrk.Telemetry.LatencyP95.Max()
	brakedPeak := withBrk.Telemetry.LatencyP95.Max()
	fmt.Printf("\nretries: %d without breaker vs %d with (%.1fx fewer); peak p95 %.0f ms vs %.0f ms\n",
		stormRetries, brakedRetries, float64(stormRetries)/float64(brakedRetries), stormPeak, brakedPeak)
	if brakedPeak > stormPeak {
		log.Fatal("the breaker did not cut the retry-storm peak p95")
	}

	// -- Experiment 2: DB primary failover under write load ------------
	failSched := &vwchar.FaultSchedule{
		DBCrash: &vwchar.FaultComponent{AtSeconds: 120, Targets: []int{0}}, // permanent
	}
	failRes := vwchar.DefaultResilience()
	failRes.FailoverDetectSeconds = 3
	failover := runOne("primary failover", vwchar.MixBidding, failSched, &failRes)

	fmt.Printf("\n== primary failover: DB primary killed at t=120 s, bidding mix ==\n\n")
	fa := vwchar.AnalyzeAvailability(failover, *sloMillis)
	if err := fa.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if fa.Failovers != 1 {
		log.Fatal("the primary was never promoted — failover is broken")
	}
	fmt.Printf("\nthe read replica was promoted %.1f s after detection; writes failed only\n", fa.MeanTimeToFailoverSec)
	fmt.Println("inside the detection window, and read-your-writes stayed intact across the")
	fmt.Println("swap. Rerun with the same -seed to replay the identical fault timeline.")
}
