// SLA prediction: the paper's stated goal is "to predict SLA compliance
// or violation based on the projected application workload". This
// example fits a linear demand model (CPU cycles per request) from a
// profiling run, projects it to a higher client population, and checks
// the prediction against an actual run at that population.
package main

import (
	"fmt"
	"log"

	"vwchar"
	"vwchar/internal/sim"
	"vwchar/internal/stats"
)

func run(clients int) (*vwchar.Result, error) {
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	cfg.Clients = clients
	cfg.Duration = 180 * sim.Second
	return vwchar.Run(cfg)
}

func main() {
	// Profile at two modest populations to fit demand-vs-load.
	var loads, webDemand, dbDemand []float64
	for _, clients := range []int{200, 400, 600} {
		res, err := run(clients)
		if err != nil {
			log.Fatal(err)
		}
		rate := float64(res.Completed) / 180
		loads = append(loads, rate)
		webDemand = append(webDemand, res.CPU(vwchar.TierWeb).Mean())
		dbDemand = append(dbDemand, res.CPU(vwchar.TierDB).Mean())
		fmt.Printf("profiled %4d clients: %6.1f req/s, web %.3g cyc/2s, db %.3g cyc/2s\n",
			clients, rate, res.CPU(vwchar.TierWeb).Mean(), res.CPU(vwchar.TierDB).Mean())
	}

	webFit, err := stats.FitLinear(loads, webDemand)
	if err != nil {
		log.Fatal(err)
	}
	dbFit, err := stats.FitLinear(loads, dbDemand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted demand models (R2 web %.3f, db %.3f):\n", webFit.R2, dbFit.R2)
	fmt.Printf("  webCycles/2s = %.3g + %.3g * req/s\n", webFit.A, webFit.B)
	fmt.Printf("  dbCycles/2s  = %.3g + %.3g * req/s\n", dbFit.A, dbFit.B)

	// Project to 1200 clients. The web VM has 2 VCPUs retiring ~620e6
	// guest cycles/s each: 2.48e9 per 2 s sample is the saturation line.
	const projectedClients = 1200
	projectedRate := float64(projectedClients) / 7.05 // think time + service
	predicted := webFit.Predict(projectedRate)
	capacity := 2 * 620e6 * 2.0
	util := predicted / capacity
	fmt.Printf("\nprojected %d clients -> %.0f req/s -> web demand %.3g cyc/2s (%.0f%% of VM capacity)\n",
		projectedClients, projectedRate, predicted, util*100)
	if util > 0.7 {
		fmt.Println("prediction: SLA AT RISK (queueing becomes nonlinear above ~70% utilization)")
	} else {
		fmt.Println("prediction: SLA compliant")
	}

	// Validate against an actual run.
	res, err := run(projectedClients)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actual   %d clients -> %.1f req/s -> web demand %.3g cyc/2s, p95 %.1f ms\n",
		projectedClients, float64(res.Completed)/180, res.CPU(vwchar.TierWeb).Mean(),
		res.P95RespTime*1e3)
	errPct := (webFit.Predict(float64(res.Completed)/180) - res.CPU(vwchar.TierWeb).Mean()) /
		res.CPU(vwchar.TierWeb).Mean() * 100
	fmt.Printf("demand prediction error at actual rate: %+.1f%%\n", errPct)
}
