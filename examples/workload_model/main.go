// Workload modeling: the paper's conclusion promises "formal methods to
// model the workload dynamics at both resource level and transaction
// level". This example does both:
//
//  1. resource level — fit each demand series with a marginal
//     distribution plus AR(1) dependence, then synthesize a new trace
//     and compare its statistics with the original;
//  2. transaction level — measure per-interaction resource footprints,
//     compose them with the mix's stationary distribution, and predict
//     the tier demand of a simulation that has not been run yet.
package main

import (
	"fmt"
	"log"

	"vwchar"
)

func main() {
	// Profile one virtualized browsing run.
	pair, err := vwchar.RunPairScaled(vwchar.Virtualized, 42, 400, 300)
	if err != nil {
		log.Fatal(err)
	}
	res := pair.Browse

	// --- Resource level.
	wm, err := vwchar.FitWorkloadModel(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("resource-level models (marginal + AR(1)):")
	for _, key := range wm.Keys() {
		fmt.Printf("  %s\n", wm.Series[key].String())
	}

	cpuModel := wm.Series["webapp/cpu"]
	fmt.Printf("\nweb CPU: observed mean %.3g; model mean %.3g; fitted family %s\n",
		res.CPU(vwchar.TierWeb).Mean(), cpuModel.Mean, cpuModel.Dist.Name())

	// --- Transaction level.
	tm, err := vwchar.FitTransactionModel(vwchar.DefaultDataset(), 25, 7)
	if err != nil {
		log.Fatal(err)
	}
	rate := float64(res.Completed) / 300
	pred := tm.Predict(vwchar.BrowsingModel(), rate, 200000, 9)
	fmt.Printf("\ntransaction-level prediction at %.1f req/s (browsing):\n", rate)
	fmt.Printf("  predicted web CPU %.3g cyc/2s   actual %.3g\n",
		pred.WebCyclesPer2s, res.CPU(vwchar.TierWeb).Mean())
	fmt.Printf("  predicted db  CPU %.3g cyc/2s   actual %.3g\n",
		pred.DBCyclesPer2s, res.CPU(vwchar.TierDB).Mean())
	fmt.Printf("  predicted db net %.0f KB/2s      actual %.0f\n",
		pred.DBNetKBPer2s, res.Net(vwchar.TierDB).Mean())

	// The same footprints predict a composition that was never profiled.
	bidPred := tm.Predict(vwchar.BiddingModel(), rate*0.85, 200000, 9)
	fmt.Printf("\nunprofiled bidding forecast at %.1f req/s: web %.3g, db %.3g cyc/2s, %.0f%% writes\n",
		rate*0.85, bidPred.WebCyclesPer2s, bidPred.DBCyclesPer2s, bidPred.WriteFraction*100)
	fmt.Printf("actual bid run:                            web %.3g, db %.3g cyc/2s, %.0f%% writes\n",
		pair.Bid.CPU(vwchar.TierWeb).Mean(), pair.Bid.CPU(vwchar.TierDB).Mean(),
		pair.Bid.WriteFraction*100)
}
