// Package vwchar reproduces "Characterizing Workload of Web Applications
// on Virtualized Servers" (Wang, Huang, Fu, Kavi; 2014) as a library: a
// deterministic discrete-event simulation of the paper's testbed (a Xen
// host running the RUBiS auction benchmark in VMs, and the same benchmark
// on two bare-metal servers), a sysstat/perf-style monitoring plane
// profiling 518 metrics every 2 seconds, and the statistical
// characterization layer that regenerates every figure, Table 1, and the
// headline ratios of the paper's evaluation.
//
// Quick start:
//
//	pair, err := vwchar.RunPair(vwchar.Virtualized, 42)
//	fig1, _ := vwchar.BuildFigure(1, pair.Browse, pair.Bid)
//	report := vwchar.Characterize(virtPair, physPair)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison.
package vwchar

import (
	"io"

	"vwchar/internal/cachetier"
	"vwchar/internal/characterize"
	"vwchar/internal/experiment"
	"vwchar/internal/faults"
	"vwchar/internal/load"
	"vwchar/internal/model"
	"vwchar/internal/plot"
	"vwchar/internal/rubis"
	"vwchar/internal/runner"
	"vwchar/internal/sim"
	"vwchar/internal/sysstat"
	"vwchar/internal/telemetry"
	"vwchar/internal/tiers"
	"vwchar/internal/timeseries"
)

// Re-exported experiment types: these form the primary public API.
type (
	// Config parameterizes one experiment run.
	Config = experiment.Config
	// Result is a completed run with its collected series.
	Result = experiment.Result
	// Env selects virtualized or physical deployment.
	Env = experiment.Env
	// MixKind selects the client request composition.
	MixKind = experiment.MixKind
	// Figure is one of the paper's Figures 1-8.
	Figure = experiment.Figure
	// Panel is one sub-figure (browse and bid curves for one tier).
	Panel = experiment.Panel
	// Series is a 2-second-sampled metric trace.
	Series = timeseries.Series
	// Ratios holds one value per resource class (CPU/RAM/disk/network).
	Ratios = characterize.Ratios
	// Report is the full Section 4 characterization.
	Report = characterize.Report
	// Table1Row is one row of the reproduced Table 1.
	Table1Row = sysstat.Table1Row
)

// Deployment environments.
const (
	Virtualized = experiment.Virtualized
	Physical    = experiment.Physical
)

// Request compositions (the paper's five).
const (
	MixBrowsing = experiment.MixBrowsing
	MixBidding  = experiment.MixBidding
	Mix30Browse = experiment.Mix30Browse
	Mix50Browse = experiment.Mix50Browse
	Mix70Browse = experiment.Mix70Browse
)

// Tier names accepted by Result accessors and characterization.
const (
	TierWeb   = experiment.TierWeb
	TierDB    = experiment.TierDB
	TierDom0  = experiment.TierDom0
	TierCache = experiment.TierCache
	TierQueue = experiment.TierQueue
)

// DefaultConfig returns the paper's experimental setup (1000 clients,
// 7 s think time, 600 samples of 2 s) for the given deployment and mix.
func DefaultConfig(env Env, mix MixKind) Config { return experiment.DefaultConfig(env, mix) }

// Run executes one experiment.
func Run(cfg Config) (*Result, error) { return experiment.Run(cfg) }

// Pair bundles the browse-only and bid-only runs of one environment,
// which is the unit every figure and ratio consumes.
type Pair struct {
	Browse, Bid *Result
}

// RunPair runs the browsing and bidding experiments in env with the
// paper's default setup and the given seed.
func RunPair(env Env, seed uint64) (*Pair, error) {
	browseCfg := DefaultConfig(env, MixBrowsing)
	browseCfg.Seed = seed
	browse, err := Run(browseCfg)
	if err != nil {
		return nil, err
	}
	bidCfg := DefaultConfig(env, MixBidding)
	bidCfg.Seed = seed + 1
	bid, err := Run(bidCfg)
	if err != nil {
		return nil, err
	}
	return &Pair{Browse: browse, Bid: bid}, nil
}

// RunPairScaled is RunPair with a shorter duration and smaller client
// population, for tests and CI (duration in seconds).
func RunPairScaled(env Env, seed uint64, clients int, durationSec float64) (*Pair, error) {
	run := func(mix MixKind, s uint64) (*Result, error) {
		cfg := DefaultConfig(env, mix)
		cfg.Seed = s
		cfg.Clients = clients
		cfg.Duration = sim.Seconds(durationSec)
		return Run(cfg)
	}
	browse, err := run(MixBrowsing, seed)
	if err != nil {
		return nil, err
	}
	bid, err := run(MixBidding, seed+1)
	if err != nil {
		return nil, err
	}
	return &Pair{Browse: browse, Bid: bid}, nil
}

// Parallel experiment sweeps: the unit of scale. A sweep fans a grid of
// points (env × mix × anything Config can express) times N replications
// out over a bounded worker pool, one isolated sim kernel per
// replication, and aggregates every metric across replications with
// mean, standard deviation, and 95% confidence intervals. Output is
// byte-identical regardless of worker count.
type (
	// SweepSpec describes a sweep: points × replications over a pool.
	SweepSpec = runner.SweepSpec
	// SweepPoint is one named sweep coordinate.
	SweepPoint = runner.Point
	// SweepResult is a completed sweep with per-point aggregates.
	SweepResult = runner.SweepResult
	// SweepPointResult is one aggregated sweep coordinate.
	SweepPointResult = runner.PointResult
	// SweepMetric is one scalar aggregated across replications.
	SweepMetric = runner.Metric
	// SweepProgress reports one completed replication.
	SweepProgress = runner.Progress
)

// Aggregated metric names every run reports (per-tier resource means
// are named cpu_<tier>, mem_<tier>_mb, disk_<tier>_kb, net_<tier>_kb).
const (
	MetricThroughput = runner.MetricThroughput
	MetricWriteFrac  = runner.MetricWriteFrac
	MetricRespMean   = runner.MetricRespMean
	MetricRespP95    = runner.MetricRespP95
	MetricErrors     = runner.MetricErrors
)

// MetricCPU, MetricMem, MetricDisk and MetricNet name the per-tier
// aggregates for SweepPointResult.Metric lookups.
func MetricCPU(tier string) string { return runner.MetricCPU(tier) }

// MetricMem names a tier's mean used-memory aggregate (MB).
func MetricMem(tier string) string { return runner.MetricMem(tier) }

// MetricDisk names a tier's mean disk-traffic aggregate (KB/2s).
func MetricDisk(tier string) string { return runner.MetricDisk(tier) }

// MetricNet names a tier's mean network-traffic aggregate (KB/2s).
func MetricNet(tier string) string { return runner.MetricNet(tier) }

// Sweep runs the spec's full grid in parallel and aggregates it.
func Sweep(spec SweepSpec) (*SweepResult, error) { return runner.Run(spec) }

// SweepGrid builds the env × mix point grid from the paper's defaults,
// with mutate (optional) adjusting each config before it becomes a point.
func SweepGrid(envs []Env, mixes []MixKind, mutate func(*Config)) []SweepPoint {
	return runner.Grid(envs, mixes, mutate)
}

// FullSweepGrid is the paper's complete 2-env × 5-mix grid.
func FullSweepGrid(mutate func(*Config)) []SweepPoint { return runner.FullGrid(mutate) }

// Open-loop workload generation (internal/load): arrival processes over
// session starts plus a session-lifecycle layer, decoupling *who
// arrives when* from *what a session does*. Setting Config.Load runs
// the open-loop driver instead of the paper's fixed closed-loop
// population; leaving it nil preserves the paper's behaviour byte for
// byte.
type (
	// LoadSpec describes one open-loop workload (JSON round-trippable).
	LoadSpec = load.Spec
	// LoadKind names an arrival-process family.
	LoadKind = load.Kind
	// LoadNamedSpec is one catalog scenario.
	LoadNamedSpec = load.NamedSpec
	// TracePoint is one (time, rate) knot of a replayable rate trace.
	TracePoint = load.TracePoint
	// SessionStats is the open-loop session-churn accounting.
	SessionStats = tiers.SessionStats
)

// Arrival-process families for LoadSpec.Kind.
const (
	LoadPoisson = load.Poisson
	LoadBursty  = load.Bursty
	LoadDiurnal = load.Diurnal
	LoadSpike   = load.Spike
	LoadTrace   = load.Trace
)

// LoadScenarios returns the built-in open-loop scenario catalog.
func LoadScenarios() []LoadNamedSpec { return load.Scenarios() }

// LoadScenarioNames lists the catalog names, sorted.
func LoadScenarioNames() []string { return load.ScenarioNames() }

// LoadScenario returns the named built-in scenario spec.
func LoadScenario(name string) (LoadSpec, error) { return load.Scenario(name) }

// ParseLoadTrace reads a CSV rate trace ("time_seconds,rate" lines) for
// LoadSpec.TracePoints.
func ParseLoadTrace(r io.Reader) ([]TracePoint, error) { return load.ParseTrace(r) }

// SweepLoadGrid builds the env × load-scenario point grid at a fixed
// mix — the open-loop analogue of SweepGrid.
func SweepLoadGrid(envs []Env, mix MixKind, scenarios []LoadNamedSpec, mutate func(*Config)) []SweepPoint {
	return runner.LoadGrid(envs, mix, scenarios, mutate)
}

// FullLoadSweepGrid crosses both deployments with every catalog
// scenario at the given mix.
func FullLoadSweepGrid(mix MixKind, mutate func(*Config)) []SweepPoint {
	return runner.FullLoadGrid(mix, mutate)
}

// Session metrics reported by open-loop sweep points (closed-loop
// points omit them).
const (
	MetricSessionsStarted   = runner.MetricSessionsStarted
	MetricSessionsFinished  = runner.MetricSessionsFinished
	MetricSessionsAbandoned = runner.MetricSessionsAbandoned
	MetricSessionsPeak      = runner.MetricSessionsPeak
)

// Windowed telemetry (internal/telemetry): every run's response-time
// pipeline records into 2-second windows rotated on the collector's
// sampling ticker, so Result.Telemetry's per-window latency quantiles,
// throughput, in-flight concurrency, and session-churn series share a
// time axis with the resource series — the flash-crowd transient is a
// plottable series, not a run-level scalar.
type (
	// TelemetrySeries is a run's per-window application-metric series.
	TelemetrySeries = telemetry.WindowSeries
	// LatencyHist is the mergeable fixed-bin log latency histogram.
	LatencyHist = telemetry.Hist
	// SweepSeries is one telemetry series aggregated pointwise (mean
	// and CI95 per window) across a sweep point's replications.
	SweepSeries = runner.SeriesAggregate
	// Transient is the time-resolved queueing analysis of a latency
	// series: time-to-saturation, peak-window p95, drain time.
	Transient = characterize.Transient
	// TransientConfig parameterizes AnalyzeTransient.
	TransientConfig = characterize.TransientConfig
	// Analysis carries the characterization warm-up window.
	Analysis = characterize.Analysis
	// ArrivalFit is a moment-based arrival-process fit of a windowed
	// arrival-count series.
	ArrivalFit = model.ArrivalFit
)

// TelemetrySeriesNames lists the per-window series names, in emission
// order (also the SweepSeries naming). The returned slice is a copy.
func TelemetrySeriesNames() []string {
	return append([]string(nil), telemetry.SeriesNames...)
}

// AnalyzeTransient computes the queueing transient of a per-window
// latency series (typically Result.Telemetry.LatencyP95).
func AnalyzeTransient(p95 *Series, cfg TransientConfig) Transient {
	return characterize.AnalyzeTransient(p95, cfg)
}

// Cluster topology (internal/tiers): Config.Topology generalizes the
// paper's fixed web-VM/DB-VM pair into a replicated cluster — N web
// replicas behind a pluggable load balancer, a DB primary with read
// replicas (read-your-writes per session), explicit VM-to-machine
// placement, and an optional telemetry-driven autoscaler that adds and
// drains web replicas mid-run. A nil or degenerate topology reproduces
// the paper's assembly byte for byte.
type (
	// Topology is the JSON round-trippable cluster description.
	Topology = tiers.Topology
	// AutoscalerSpec configures the in-loop autoscaler.
	AutoscalerSpec = tiers.AutoscalerSpec
	// LBPolicy names a load-balancer dispatch policy.
	LBPolicy = tiers.LBPolicy
	// ScaleEvent is one autoscaler action (boot, up, down).
	ScaleEvent = tiers.ScaleEvent
	// ScalingStats summarizes a run's scale events.
	ScalingStats = experiment.ScalingStats
	// ScalingAnalysis splits a run's SLO debt into served-slow and
	// driven-away halves and reports time-to-scale.
	ScalingAnalysis = characterize.ScalingAnalysis
)

// Load-balancer policies for Topology.LB.
const (
	LBRoundRobin        = tiers.LBRoundRobin
	LBLeastInFlight     = tiers.LBLeastInFlight
	LBJoinShortestQueue = tiers.LBJoinShortestQueue
)

// Autoscaler policies for AutoscalerSpec.Policy.
const (
	AutoscaleReactive   = tiers.AutoscaleReactive
	AutoscalePredictive = tiers.AutoscalePredictive
)

// Cluster scaling metrics reported by sweep points whose runs carried
// a cluster topology.
const (
	MetricReplicasPeak = runner.MetricReplicasPeak
	MetricScaleUps     = runner.MetricScaleUps
	MetricScaleDowns   = runner.MetricScaleDowns
	MetricTimeToScale  = runner.MetricTimeToScale
)

// AnalyzeScaling computes the scaling analysis of a run against an SLO
// in milliseconds: time-to-scale, peak replica count, worst window,
// and the SLO debt split between responses served slowly and sessions
// driven away.
func AnalyzeScaling(r *Result, sloMillis float64) ScalingAnalysis {
	return characterize.AnalyzeScaling(r, sloMillis)
}

// Fault injection and resilience (internal/faults, internal/tiers):
// Config.Faults carries a seed-deterministic fault schedule (web/DB
// crashes, whole-machine failures, degraded modes) expanded into an
// explicit timeline before the run starts; Config.Resilience arms the
// serving path with per-call timeouts, bounded retries with budgets,
// health-check ejection, DB primary failover, and an optional circuit
// breaker. Both nil reproduces the fault-free runs byte for byte.
type (
	// FaultSchedule is the JSON round-trippable fault description.
	FaultSchedule = faults.Schedule
	// FaultComponent is one fault source (MTTF/MTTR or one-shot).
	FaultComponent = faults.Component
	// FaultEvent is one expanded timeline entry.
	FaultEvent = faults.Event
	// ResilienceSpec configures the guarded serving path.
	ResilienceSpec = faults.ResilienceSpec
	// BreakerSpec configures the optional circuit breaker.
	BreakerSpec = faults.BreakerSpec
	// ChaosScenario is one catalog entry pairing faults with the
	// resilience posture and load shape that exercises them.
	ChaosScenario = faults.Scenario
	// RequestStats is the per-run request-outcome accounting.
	RequestStats = experiment.RequestStats
	// GuardStats counts the resilience layer's interventions.
	GuardStats = tiers.GuardStats
	// FailoverEvent records one DB primary promotion.
	FailoverEvent = tiers.FailoverEvent
	// AvailabilityAnalysis is the fault-injection view of a run.
	AvailabilityAnalysis = characterize.AvailabilityAnalysis
)

// Correlated failures couple component losses in space and time:
// shared-fate groups fall together, fault storms modulate the crash
// rate with an intensity profile, conditional triggers shrink a
// component's MTTF while another is down, and the load-coupled hazard
// turns sustained overload into crash risk in-run. The overload
// controller (brownout) sheds optional read work first so degraded
// answers replace cascading losses. All of it is off by default and
// expanded deterministically from the seed.
type (
	// FaultCorrelation couples component failures: shared-fate
	// groups, storms, and conditional triggers.
	FaultCorrelation = faults.Correlation
	// SharedFateGroup fells a named set of machines together.
	SharedFateGroup = faults.SharedFateGroup
	// FaultStorm is a modulated cluster crash process.
	FaultStorm = faults.Storm
	// FaultTrigger shrinks a target's MTTF while a condition is down.
	FaultTrigger = faults.Trigger
	// HazardSpec arms the load-coupled in-run crash hazard.
	HazardSpec = faults.HazardSpec
	// BrownoutSpec arms the overload-adaptive degradation controller.
	BrownoutSpec = faults.BrownoutSpec
	// HazardCrash records one load-coupled crash.
	HazardCrash = tiers.HazardCrash
	// HazardStats is the hazard's per-run accounting.
	HazardStats = tiers.HazardStats
	// BrownoutStats is the overload controller's per-run accounting.
	BrownoutStats = tiers.BrownoutStats
	// CascadeAnalysis is the correlated-failure view of a run.
	CascadeAnalysis = characterize.CascadeAnalysis
)

// Storm intensity profiles.
const (
	StormProfileFlat    = faults.ProfileFlat
	StormProfileDiurnal = faults.ProfileDiurnal
)

// AnalyzeCascade computes the correlated-failure analysis of a run
// against an SLO in milliseconds: blast radius, cascade depth, crash
// attribution by origin, time-to-stabilize, and brownout accounting.
func AnalyzeCascade(r *Result, sloMillis float64) CascadeAnalysis {
	return characterize.AnalyzeCascade(r, sloMillis)
}

// ChaosScenarios returns the built-in chaos scenario catalog by name.
func ChaosScenarios() map[string]ChaosScenario { return faults.Scenarios() }

// ChaosScenarioNames lists the catalog names, sorted.
func ChaosScenarioNames() []string { return faults.ScenarioNames() }

// ChaosScenario returns the named built-in chaos scenario.
func ChaosScenarioByName(name string) (ChaosScenario, error) { return faults.ScenarioByName(name) }

// DefaultResilience is a sane guarded-path posture: 1 s timeouts, two
// retries with budget, health checks, failover after 5 s.
func DefaultResilience() ResilienceSpec { return *faults.DefaultResilience() }

// AnalyzeAvailability computes the availability analysis of a run
// against an SLO in milliseconds: delivered availability, loss split,
// MTTR as observed, time-to-failover, and fault-attributed SLO debt.
func AnalyzeAvailability(r *Result, sloMillis float64) AvailabilityAnalysis {
	return characterize.AnalyzeAvailability(r, sloMillis)
}

// Fault metrics reported by sweep points whose runs carried a fault
// schedule or resilience spec.
const (
	MetricTimedOut     = runner.MetricTimedOut
	MetricShed         = runner.MetricShed
	MetricFailedReq    = runner.MetricFailedReq
	MetricRetries      = runner.MetricRetries
	MetricAvailability = runner.MetricAvailability
	MetricFailovers    = runner.MetricFailovers
)

// Correlated-failure metrics reported by sweep points whose runs
// carried a crash hazard or overload controller.
const (
	MetricDegraded        = runner.MetricDegraded
	MetricHazardCrashes   = runner.MetricHazardCrashes
	MetricBrownoutPeak    = runner.MetricBrownoutPeak
	MetricBrownoutDropped = runner.MetricBrownoutDropped
)

// Cache and write-behind queue tiers (internal/cachetier,
// internal/tiers): Config.Cache deploys a memcache-like cache VM —
// cacheable reads consult it first and fall through to the DB on a
// miss, writes invalidate dependent keys, hot-key TTL expiries herd
// into thundering stampedes unless single-flight leases are on, and a
// crash restarts it cold. Config.Queue deploys a write-behind broker —
// writes publish their query chains and complete on the ack, a
// periodic batched drain replays them to the DB primary, and a crash
// retains the journaled backlog (at-least-once). Both nil reproduces
// the direct-to-DB serving path byte for byte.
type (
	// CacheSpec is the JSON round-trippable cache-tier description.
	CacheSpec = cachetier.CacheSpec
	// QueueSpec is the JSON round-trippable queue-tier description.
	QueueSpec = cachetier.QueueSpec
	// CacheStats is the cache node's per-run accounting.
	CacheStats = tiers.CacheStats
	// QueueStats is the broker's per-run accounting.
	QueueStats = tiers.QueueStats
	// InteractionLatency is one interaction kind's run-level latency and
	// cache breakdown (Result.PerInteraction).
	InteractionLatency = experiment.InteractionLatency
	// CacheAnalysis is the cache/queue view of a run: warmup
	// convergence, miss-storm blast radius, backlog drain.
	CacheAnalysis = characterize.CacheAnalysis
)

// DefaultCacheSpec returns the calibrated cache tier (4096 entries,
// 64 MB, 60 s TTL, leases off).
func DefaultCacheSpec() CacheSpec { return cachetier.DefaultCacheSpec() }

// DefaultQueueSpec returns the calibrated write-behind queue tier
// (4096-deep, 64-write batches, 200 ms drain).
func DefaultQueueSpec() QueueSpec { return QueueSpec{}.WithDefaults() }

// AnalyzeCache computes the cache/queue analysis of a run: hit-ratio
// convergence, thundering-herd blast radius, and backlog drain time.
func AnalyzeCache(r *Result) CacheAnalysis { return characterize.AnalyzeCache(r) }

// CacheableInteractions lists the RUBiS interaction kinds the cache
// tier serves.
func CacheableInteractions() []Interaction { return rubis.CacheableInteractions() }

// Cache and queue metrics reported by sweep points whose runs deployed
// the corresponding tier.
const (
	MetricCacheHitRatio  = runner.MetricCacheHitRatio
	MetricCacheStampedes = runner.MetricCacheStampedes
	MetricCacheEvictions = runner.MetricCacheEvictions
	MetricQueuePublished = runner.MetricQueuePublished
	MetricQueuePeakDepth = runner.MetricQueuePeakDepth
	MetricQueueMaxLag    = runner.MetricQueueMaxLag
	MetricQueueOverflows = runner.MetricQueueOverflows
)

// BuildSaturationFigure assembles the Figure 9-style panel from one
// run: web CPU demand paired with per-window latency p95 on a shared
// normalized axis, with the active replica count overlaid when the run
// autoscaled.
func BuildSaturationFigure(r *Result) (Figure, error) {
	return experiment.BuildSaturationFigure(r)
}

// AnalysisFromTelemetry derives the characterization warm-up window
// from a run's windowed throughput instead of the fixed 20% skip.
func AnalysisFromTelemetry(r *Result) Analysis { return characterize.AnalysisFromTelemetry(r) }

// FitArrivals fits an arrival process (Poisson / bursty MMPP /
// diurnal) to a windowed arrival-count series by its index of
// dispersion and period moments.
func FitArrivals(counts *Series) (ArrivalFit, error) { return model.FitArrivals(counts) }

// FitArrivalsFromResult fits the arrival process of an open-loop run
// from its telemetry's per-window session starts.
func FitArrivalsFromResult(r *Result) (ArrivalFit, error) { return model.FitArrivalsFromResult(r) }

// WriteTelemetryCSV exports a run's windowed telemetry as one CSV
// table with a shared time column, aligned with the resource series.
func WriteTelemetryCSV(w io.Writer, r *Result) error {
	if r.Telemetry == nil {
		return nil
	}
	return timeseries.WriteTableCSV(w, r.Telemetry.Present()...)
}

// Envs lists the supported deployments; Mixes the five compositions.
func Envs() []Env { return experiment.Envs() }

// Mixes lists the five request compositions in browse-share order.
func Mixes() []MixKind { return experiment.Mixes() }

// ParseEnv converts a flag string into an Env.
func ParseEnv(s string) (Env, error) { return experiment.ParseEnv(s) }

// ParseMix converts a flag string into a MixKind.
func ParseMix(s string) (MixKind, error) { return experiment.ParseMix(s) }

// BuildFigure assembles the paper's figure id (1-8) from a run pair of
// the matching environment.
func BuildFigure(id int, browse, bid *Result) (Figure, error) {
	return experiment.BuildFigure(id, browse, bid)
}

// FigureSpecs lists the eight figures with captions and environments.
func FigureSpecs() []experiment.FigureSpec { return experiment.FigureSpecs() }

// Characterize computes the paper's Section 4 analyses from the two
// environment pairs.
func Characterize(virt, phys *Pair) Report {
	return characterize.BuildReport(virt.Browse, virt.Bid, phys.Browse, phys.Bid)
}

// TierRatios computes the front-end/back-end demand ratios (§4.1).
func TierRatios(r *Result) Ratios { return characterize.TierRatios(r) }

// VMToDom0Ratios computes the VM-aggregate vs dom0 ratios (§4.1).
func VMToDom0Ratios(r *Result) Ratios { return characterize.VMToDom0Ratios(r) }

// EnvAggregateRatios computes the non-virt vs virt aggregate ratios (§4.2).
func EnvAggregateRatios(virt, phys *Result) Ratios {
	return characterize.EnvAggregateRatios(virt, phys)
}

// PhysicalDelta computes the §4.2 physical-demand deltas.
func PhysicalDelta(virt, phys *Result) Ratios {
	return characterize.PhysicalDelta(virt, phys)
}

// Table1 returns the reproduced Table 1 rows.
func Table1() []Table1Row { return sysstat.Table1() }

// WriteTable1 renders Table 1 as text.
func WriteTable1(w io.Writer) error { return sysstat.WriteTable1(w) }

// TotalProfiledMetrics reports the monitoring-plane width (518: 182
// hypervisor sysstat + 182 VM sysstat + 154 perf counters).
func TotalProfiledMetrics() int { return sysstat.TotalProfiledMetrics() }

// Formal workload modeling (the paper's stated future work): resource-
// level series models and transaction-level demand prediction.
type (
	// WorkloadModel is the fitted resource-level model of one run.
	WorkloadModel = model.WorkloadModel
	// SeriesModel is one fitted demand series (marginal + AR(1)).
	SeriesModel = model.SeriesModel
	// TransactionModel maps interactions to resource footprints.
	TransactionModel = model.TransactionModel
	// DemandPrediction is a transaction-level aggregate forecast.
	DemandPrediction = model.DemandPrediction
	// Interaction names one of the 26 RUBiS request types.
	Interaction = rubis.Interaction
	// MixModel is a client behaviour model (Markov chain + think time).
	MixModel = rubis.Model
	// DatasetConfig scales the generated auction dataset.
	DatasetConfig = rubis.DatasetConfig
)

// FitWorkloadModel fits the resource-level workload model to a run.
func FitWorkloadModel(r *Result) (*WorkloadModel, error) { return model.Fit(r) }

// FitTransactionModel measures per-interaction resource footprints.
func FitTransactionModel(cfg DatasetConfig, samplesPer int, seed uint64) (*TransactionModel, error) {
	return model.FitTransactions(cfg, samplesPer, seed)
}

// DefaultDataset returns the standard scaled RUBiS dataset.
func DefaultDataset() DatasetConfig { return rubis.DefaultDataset() }

// BrowsingModel and BiddingModel expose the paper's two client mixes for
// transaction-level prediction.
func BrowsingModel() MixModel { return rubis.BrowsingMix() }

// BiddingModel returns the read-write client mix.
func BiddingModel() MixModel { return rubis.BiddingMix() }

// RenderFigure draws a figure's panels as ASCII charts.
func RenderFigure(w io.Writer, fig Figure) error {
	for i := range fig.Panels {
		p := &fig.Panels[i]
		opts := plot.DefaultOptions(p.Title, p.Unit)
		if err := plot.Render(w, opts, p.Series()...); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigureCSV exports a figure as one CSV table per panel.
func WriteFigureCSV(w io.Writer, fig Figure) error {
	for i := range fig.Panels {
		p := &fig.Panels[i]
		cols := make([]*timeseries.Series, 0, 2+len(p.Overlays))
		for _, s := range p.Series() {
			cols = append(cols, s.Clone(p.Title+" "+s.Name))
		}
		if err := timeseries.WriteTableCSV(w, cols...); err != nil {
			return err
		}
	}
	return nil
}
