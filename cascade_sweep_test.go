package vwchar_test

import (
	"bytes"
	"testing"

	"vwchar"
	"vwchar/internal/sim"
)

// cascadeSweepSpec arms every correlated-failure feature at once on
// the cluster grid: a shared-fate rack loss, a web-crash storm, a
// conditional trigger, the load-coupled crash hazard, and the
// overload controller — the worst case for cross-worker determinism,
// since the hazard and brownout read live run state every window.
func cascadeSweepSpec(workers int) vwchar.SweepSpec {
	return vwchar.SweepSpec{
		Points: vwchar.SweepGrid(
			[]vwchar.Env{vwchar.Virtualized},
			[]vwchar.MixKind{vwchar.MixBrowsing, vwchar.MixBidding},
			func(c *vwchar.Config) {
				c.Clients = 800
				c.Duration = 40 * sim.Second
				c.Dataset.Users = 2000
				c.Dataset.ActiveItems = 600
				c.Dataset.OldItems = 1300
				c.Dataset.BufferPages = 500
				c.Topology = &vwchar.Topology{
					WebReplicas:    3,
					MaxWebReplicas: 3,
					DBReadReplicas: 1,
					Machines:       2,
					LB:             vwchar.LBJoinShortestQueue,
				}
				c.Faults = &vwchar.FaultSchedule{
					WebCrash: &vwchar.FaultComponent{AtSeconds: 8, MTTRSeconds: 10, Targets: []int{1}},
					Correlation: &vwchar.FaultCorrelation{
						Groups: []vwchar.SharedFateGroup{{
							Name: "rack1", Machines: []int{1}, AtSeconds: 20, MTTRSeconds: 8,
						}},
						Storms: []vwchar.FaultStorm{{
							Name: "squall", Component: "web_crash", RatePerHour: 600,
							Profile: vwchar.StormProfileDiurnal, PeriodSeconds: 40, PeakSeconds: 20,
							PeakFactor: 3, MTTRSeconds: 5,
						}},
						Triggers: []vwchar.FaultTrigger{{
							Name: "pair-overload", While: "web", WhileTarget: 1,
							Component: "web_crash", Targets: []int{2},
							MTTFSeconds: 4, MTTRSeconds: 3,
						}},
					},
					// Workers=64 per replica, so these utilization knobs are
					// deliberately tiny: queue depth 1 at a window boundary
					// is already over the hazard threshold at this load.
					Hazard: &vwchar.HazardSpec{
						UtilThreshold: 0.015, CrashProb: 0.5, MTTRSeconds: 8, MaxCrashes: 2,
					},
				}
				res := vwchar.DefaultResilience()
				res.Brownout = &vwchar.BrownoutSpec{EnterUtil: 0.01, ExitUtil: 0.002, DropFraction: 0.5, MaxLevel: 2}
				c.Resilience = &res
			}),
		Replications: 2,
		RootSeed:     77,
		Workers:      workers,
	}
}

// TestCascadeSweepByteIdenticalAcrossWorkers extends the determinism
// contract to correlated failures: with shared-fate groups, a storm, a
// trigger, the in-run crash hazard, and the brownout controller all
// armed, a fixed seed must produce byte-identical aggregated output at
// workers=1 and workers=8.
func TestCascadeSweepByteIdenticalAcrossWorkers(t *testing.T) {
	table := func(workers int) ([]byte, *vwchar.SweepResult) {
		sr, err := vwchar.Sweep(cascadeSweepSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sr.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), sr
	}
	seq, sr := table(1)
	par, _ := table(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("cascade sweep output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}

	var stormEvents, hazardCrashes, degraded, dropped uint64
	for i := range sr.Points {
		pr := &sr.Points[i]
		for _, rep := range pr.Reps {
			rq := rep.Requests
			if rq == nil {
				t.Fatalf("%s: cascade run missing request accounting", pr.Point.Name)
			}
			if sum := rq.Served + rq.TimedOut + rq.Shed + rq.Failed + rq.Degraded + rq.InFlight; sum != rq.Issued {
				t.Fatalf("%s: accounting broken: served %d + timed-out %d + shed %d + failed %d + degraded %d + in-flight %d != issued %d",
					pr.Point.Name, rq.Served, rq.TimedOut, rq.Shed, rq.Failed, rq.Degraded, rq.InFlight, rq.Issued)
			}
			if rq.Served == 0 {
				t.Fatalf("%s: cascade run served nothing", pr.Point.Name)
			}
			if rep.Hazard == nil || rep.Brownout == nil {
				t.Fatalf("%s: hazard/brownout accounting missing: %v %v", pr.Point.Name, rep.Hazard, rep.Brownout)
			}
			hazardCrashes += uint64(len(rep.Hazard.Crashes))
			degraded += rq.Degraded
			dropped += rep.Brownout.Dropped
			sawGroup := false
			for _, ev := range rep.FaultTimeline {
				switch ev.Origin {
				case "squall":
					stormEvents++
				case "rack1":
					sawGroup = true
				}
			}
			if !sawGroup {
				t.Fatalf("%s: shared-fate group never expanded", pr.Point.Name)
			}
		}
	}
	// Non-vacuity across the grid: the storm fired, the brownout shed
	// or degraded work, and the correlated machinery left its mark.
	if stormEvents == 0 {
		t.Fatal("storm produced no events across the grid")
	}
	if degraded+dropped == 0 {
		t.Fatal("overload controller never degraded or dropped anything; the cascade grid is vacuous")
	}
	if hazardCrashes == 0 {
		t.Fatal("load-coupled hazard never fired across the grid; the cascade grid is vacuous")
	}
}
