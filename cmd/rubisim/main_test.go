package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vwchar"
	"vwchar/internal/sim"
)

// TestRunSmoke drives the binary's run path in-process at a tiny scale
// and checks it exits clean with non-empty output.
func TestRunSmoke(t *testing.T) {
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	cfg.Clients = 20
	cfg.Duration = 30 * sim.Second
	var buf bytes.Buffer
	if err := run(cfg, true, 500, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"virtualized / browsing", "requests:", "response time:", "webapp", "mysql", "dom0", "time_s,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	cfg.Clients = 0
	if err := run(cfg, false, 500, &bytes.Buffer{}); err == nil {
		t.Fatal("zero clients accepted")
	}
}

// TestRunSmokeOpenLoop drives the open-loop path: scenario selection,
// rate override, and the session summary line.
func TestRunSmokeOpenLoop(t *testing.T) {
	cfg, err := buildConfig("virtualized", "browsing", 0, 40, 7, "bursty", 2.5, "")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Load == nil || cfg.Load.Rate != 2.5 {
		t.Fatalf("flag plumbing lost the load spec: %+v", cfg.Load)
	}
	var buf bytes.Buffer
	if err := run(cfg, false, 500, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"open-loop", "sessions:", "finished", "webapp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTraceFlag exercises -trace end to end through a temp file.
func TestRunTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, []byte("0,1\n10,4\n30,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := buildConfig("virtualized", "browsing", 0, 40, 7, "", 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Load == nil || cfg.Load.Kind != vwchar.LoadTrace || len(cfg.Load.TracePoints) != 3 {
		t.Fatalf("trace flag plumbing broken: %+v", cfg.Load)
	}
	var buf bytes.Buffer
	if err := run(cfg, false, 500, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sessions:") {
		t.Fatalf("trace run missing session summary:\n%s", buf.String())
	}
}

// TestRunSmokeFaults drives a chaos scenario end to end through the
// flag path and checks the availability summary line appears.
func TestRunSmokeFaults(t *testing.T) {
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	cfg.Clients = 20
	cfg.Duration = 40 * sim.Second
	if err := applyFaults(&cfg, "kill-web-replica", 0, 0, 0, 40, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if cfg.Faults == nil || cfg.Resilience == nil {
		t.Fatalf("scenario did not arm faults+resilience: %+v %+v", cfg.Faults, cfg.Resilience)
	}
	if cfg.Topology == nil || cfg.Topology.WebReplicas < 2 {
		t.Fatalf("scenario minimums not applied: %+v", cfg.Topology)
	}
	// The catalog scenario brings its own load shape.
	if cfg.Load == nil {
		t.Fatal("scenario load shape not applied")
	}
	var buf bytes.Buffer
	if err := run(cfg, false, 500, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "availability:") {
		t.Fatalf("fault run missing availability summary:\n%s", buf.String())
	}
}

// TestFaultFlagValidation pins the ad-hoc fault flags' dependencies.
func TestFaultFlagValidation(t *testing.T) {
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	if err := applyFaults(&cfg, "", 0, 20, 0, 40, 0, 0, 0); err == nil {
		t.Fatal("-mttr without -mttf accepted")
	}
	if err := applyFaults(&cfg, "", 0, 0, 0.5, 40, 0, 0, 0); err == nil {
		t.Fatal("-slow-factor below 1 accepted")
	}
	if err := applyFaults(&cfg, "no-such-scenario", 0, 0, 0, 40, 0, 0, 0); err == nil {
		t.Fatal("unknown chaos scenario accepted")
	}
	adhoc := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBidding)
	adhoc.Clients = 10
	if err := applyFaults(&adhoc, "", 200, 0, 0, 40, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if adhoc.Faults.WebCrash == nil || adhoc.Faults.WebCrash.MTTRSeconds != 30 {
		t.Fatalf("-mttf default MTTR not applied: %+v", adhoc.Faults.WebCrash)
	}
	if adhoc.Resilience == nil || adhoc.Topology.WebReplicas < 2 {
		t.Fatal("ad-hoc fault did not arm default resilience + 2 replicas")
	}
}

// TestFlagValidation pins the mutually-exclusive and dependent flags.
func TestFlagValidation(t *testing.T) {
	if _, err := buildConfig("virtualized", "browsing", 10, 40, 7, "steady", 0, "x.csv"); err == nil {
		t.Fatal("-load with -trace accepted")
	}
	if _, err := buildConfig("virtualized", "browsing", 10, 40, 7, "", 3, ""); err == nil {
		t.Fatal("-rate without -load accepted")
	}
	if _, err := buildConfig("virtualized", "browsing", 10, 40, 7, "zzz", 0, ""); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
