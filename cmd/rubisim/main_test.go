package main

import (
	"bytes"
	"strings"
	"testing"

	"vwchar"
	"vwchar/internal/sim"
)

// TestRunSmoke drives the binary's run path in-process at a tiny scale
// and checks it exits clean with non-empty output.
func TestRunSmoke(t *testing.T) {
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	cfg.Clients = 20
	cfg.Duration = 30 * sim.Second
	var buf bytes.Buffer
	if err := run(cfg, true, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"virtualized / browsing", "requests:", "response time:", "webapp", "mysql", "dom0", "time_s,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	cfg.Clients = 0
	if err := run(cfg, false, &bytes.Buffer{}); err == nil {
		t.Fatal("zero clients accepted")
	}
}
