// Command rubisim runs one experiment from the paper's setup and prints
// the headline demand series plus a summary.
//
// Usage:
//
//	rubisim -env virtualized -mix browsing -clients 1000 -duration 1200 -seed 42
//
// By default it drives the paper's closed-loop client population. The
// open-loop workload generator is selected with -load (a scenario from
// the catalog: steady, bursty, diurnal, flash-crowd) or -trace (a CSV
// of "time_seconds,rate" knots replayed with linear interpolation);
// -rate overrides the scenario's base intensity (for traces it is a
// rate multiplier).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vwchar"
	"vwchar/internal/sim"
	"vwchar/internal/timeseries"
)

func main() {
	env := flag.String("env", "virtualized", "deployment: virtualized | physical")
	mix := flag.String("mix", "browsing", "client mix: browsing | bidding | 30/70 | 50/50 | 70/30")
	clients := flag.Int("clients", 1000, "closed-loop client population (ignored with -load/-trace)")
	duration := flag.Float64("duration", 1200, "profiled window in seconds")
	seed := flag.Uint64("seed", 42, "experiment seed")
	csv := flag.Bool("csv", false, "emit the headline series as CSV instead of charts")
	loadName := flag.String("load", "", "open-loop scenario: "+strings.Join(vwchar.LoadScenarioNames(), " | "))
	rate := flag.Float64("rate", 0, "override the scenario's arrival rate (sessions/s; trace: multiplier)")
	trace := flag.String("trace", "", "replay an arrival-rate trace from a CSV file (time_seconds,rate)")
	webReplicas := flag.Int("web-replicas", 0, "initial web replicas (0: paper's single web VM)")
	maxWeb := flag.Int("max-web-replicas", 0, "web replica headroom for the autoscaler (0: no headroom)")
	dbReplicas := flag.Int("db-replicas", 0, "DB read replicas behind the primary")
	lb := flag.String("lb", "", "load balancer: round-robin | least-inflight | jsq")
	machines := flag.Int("machines", 0, "physical machines to place VMs on (0/1: one host)")
	autoscale := flag.String("autoscale", "", "autoscaler policy: reactive | predictive")
	sloMillis := flag.Float64("slo-ms", 500, "autoscaler latency SLO (p95, ms)")
	faultsName := flag.String("faults", "", "chaos scenario: "+strings.Join(vwchar.ChaosScenarioNames(), " | "))
	mttf := flag.Float64("mttf", 0, "ad-hoc web-replica crash MTTF in seconds (recurring)")
	mttr := flag.Float64("mttr", 0, "repair time in seconds for -mttf crashes (0: 30 s)")
	slowFactor := flag.Float64("slow-factor", 0, "degrade machine 0's CPU by this factor mid-run (>1)")
	hazardUtil := flag.Float64("hazard-util", 0, "arm the load-coupled crash hazard at this per-replica utilization (queue depth / workers)")
	hazardProb := flag.Float64("hazard-prob", 0.05, "per-window crash probability once a replica is over -hazard-util")
	brownoutUtil := flag.Float64("brownout-util", 0, "arm the overload controller: mean web utilization that starts browning out optional reads")
	cacheOn := flag.Bool("cache", false, "deploy the memcache-like cache tier (virtualized only)")
	cacheMB := flag.Float64("cache-mb", 0, "cache capacity in MB (0: default 64)")
	cacheTTL := flag.Float64("cache-ttl", 0, "cache entry TTL in seconds (0: default 60)")
	cacheLeases := flag.Bool("cache-leases", false, "protect hot-key expiries with single-flight leases")
	queueOn := flag.Bool("queue", false, "deploy the write-behind queue tier (virtualized only)")
	queueDepth := flag.Int("queue-depth", 0, "queue backlog bound in writes (0: default 4096)")
	flag.Parse()

	cfg, err := buildConfig(*env, *mix, *clients, *duration, *seed, *loadName, *rate, *trace)
	if err == nil {
		err = applyTopology(&cfg, *webReplicas, *maxWeb, *dbReplicas, *lb, *machines, *autoscale, *sloMillis)
	}
	if err == nil {
		err = applyFaults(&cfg, *faultsName, *mttf, *mttr, *slowFactor, *duration, *hazardUtil, *hazardProb, *brownoutUtil)
	}
	if err == nil {
		err = applyCacheQueue(&cfg, *cacheOn, *cacheMB, *cacheTTL, *cacheLeases, *queueOn, *queueDepth)
	}
	if err == nil {
		err = run(cfg, *csv, *sloMillis, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubisim:", err)
		os.Exit(1)
	}
}

// buildConfig assembles the experiment config from flag values.
func buildConfig(env, mix string, clients int, duration float64, seed uint64, loadName string, rate float64, trace string) (vwchar.Config, error) {
	e, err := vwchar.ParseEnv(env)
	if err != nil {
		return vwchar.Config{}, err
	}
	m, err := vwchar.ParseMix(mix)
	if err != nil {
		return vwchar.Config{}, err
	}
	cfg := vwchar.DefaultConfig(e, m)
	cfg.Clients = clients
	cfg.Duration = sim.Seconds(duration)
	cfg.Seed = seed

	switch {
	case trace != "" && loadName != "":
		return vwchar.Config{}, fmt.Errorf("-load and -trace are mutually exclusive")
	case trace != "":
		f, err := os.Open(trace)
		if err != nil {
			return vwchar.Config{}, err
		}
		defer f.Close()
		points, err := vwchar.ParseLoadTrace(f)
		if err != nil {
			return vwchar.Config{}, err
		}
		cfg.Load = &vwchar.LoadSpec{
			Kind:        vwchar.LoadTrace,
			Rate:        rate,
			TracePoints: points,
			TracePath:   trace,
		}
	case loadName != "":
		spec, err := vwchar.LoadScenario(loadName)
		if err != nil {
			return vwchar.Config{}, err
		}
		if rate > 0 {
			spec.Rate = rate
		}
		cfg.Load = &spec
	case rate > 0:
		return vwchar.Config{}, fmt.Errorf("-rate needs -load or -trace")
	}
	return cfg, nil
}

// applyTopology attaches a cluster topology when any cluster flag was
// set; with all flags at their zero values the config keeps the
// paper's fixed pair.
func applyTopology(cfg *vwchar.Config, webReplicas, maxWeb, dbReplicas int, lb string, machines int, autoscale string, sloMillis float64) error {
	if webReplicas == 0 && maxWeb == 0 && dbReplicas == 0 && lb == "" && machines == 0 && autoscale == "" {
		return nil
	}
	topo := &vwchar.Topology{
		WebReplicas:    webReplicas,
		MaxWebReplicas: maxWeb,
		DBReadReplicas: dbReplicas,
		LB:             vwchar.LBPolicy(lb),
		Machines:       machines,
	}
	if autoscale != "" {
		topo.Autoscaler = &vwchar.AutoscalerSpec{Policy: autoscale, SLOMillis: sloMillis}
	}
	cfg.Topology = topo
	return cfg.Validate()
}

// applyFaults attaches a fault schedule: a catalog scenario by name,
// an ad-hoc recurring web-replica crash (-mttf/-mttr), a mid-run slow
// machine (-slow-factor), the load-coupled crash hazard
// (-hazard-util/-hazard-prob), and/or the overload controller
// (-brownout-util). Scenarios bring their own load shape (unless one
// was chosen), resilience posture, and topology minimums; ad-hoc
// faults pair with the default resilience spec.
func applyFaults(cfg *vwchar.Config, name string, mttf, mttr, slowFactor, duration, hazardUtil, hazardProb, brownoutUtil float64) error {
	if name == "" && mttf == 0 && slowFactor == 0 && hazardUtil == 0 && brownoutUtil == 0 {
		if mttr != 0 {
			return fmt.Errorf("-mttr needs -mttf")
		}
		return nil
	}
	sched := &vwchar.FaultSchedule{}
	minWeb, minDB, minMachines := 0, 0, 0
	if name != "" {
		sc, err := vwchar.ChaosScenarioByName(name)
		if err != nil {
			return err
		}
		*sched = sc.Faults
		res := sc.Resilience
		cfg.Resilience = &res
		minWeb, minDB, minMachines = sc.MinWebReplicas, sc.MinDBReplicas, sc.MinMachines
		if cfg.Load == nil && sc.Load != "" {
			spec, err := vwchar.LoadScenario(sc.Load)
			if err != nil {
				return err
			}
			cfg.Load = &spec
		}
	}
	if mttr != 0 && mttf == 0 {
		return fmt.Errorf("-mttr needs -mttf")
	}
	if mttf > 0 {
		if mttr == 0 {
			mttr = 30
		}
		sched.WebCrash = &vwchar.FaultComponent{MTTFSeconds: mttf, MTTRSeconds: mttr}
		minWeb = max(minWeb, 2)
	}
	if slowFactor > 0 {
		if slowFactor <= 1 {
			return fmt.Errorf("-slow-factor must exceed 1")
		}
		sched.SlowNode = &vwchar.FaultComponent{
			AtSeconds:   duration / 4,
			MTTRSeconds: duration / 2,
			Value:       slowFactor,
			Targets:     []int{0},
		}
		minMachines = max(minMachines, 1)
	}
	if hazardUtil > 0 {
		sched.Hazard = &vwchar.HazardSpec{
			UtilThreshold: hazardUtil,
			CrashProb:     hazardProb,
			MTTRSeconds:   60,
		}
		minWeb = max(minWeb, 2)
	}
	cfg.Faults = sched
	if cfg.Resilience == nil {
		res := vwchar.DefaultResilience()
		cfg.Resilience = &res
	}
	if brownoutUtil > 0 {
		cfg.Resilience.Brownout = &vwchar.BrownoutSpec{EnterUtil: brownoutUtil}
	}
	if cfg.Topology == nil && (minWeb > 1 || minDB > 0 || minMachines > 1) {
		cfg.Topology = &vwchar.Topology{}
	}
	if t := cfg.Topology; t != nil {
		t.WebReplicas = max(t.WebReplicas, minWeb)
		t.MaxWebReplicas = max(t.MaxWebReplicas, t.WebReplicas)
		t.DBReadReplicas = max(t.DBReadReplicas, minDB)
		t.Machines = max(t.Machines, minMachines)
	}
	return cfg.Validate()
}

// applyCacheQueue attaches the cache and write-behind queue tiers when
// their flags were set; with all flags at their zero values the config
// keeps the paper's direct-to-DB path.
func applyCacheQueue(cfg *vwchar.Config, cacheOn bool, mb, ttl float64, leases, queueOn bool, depth int) error {
	if !cacheOn && (mb > 0 || ttl > 0 || leases) {
		return fmt.Errorf("-cache-mb/-cache-ttl/-cache-leases need -cache")
	}
	if !queueOn && depth > 0 {
		return fmt.Errorf("-queue-depth needs -queue")
	}
	if cacheOn {
		spec := vwchar.DefaultCacheSpec()
		if mb > 0 {
			spec.MaxMB = mb
		}
		if ttl > 0 {
			spec.TTLSeconds = ttl
		}
		spec.Leases = leases
		cfg.Cache = &spec
	}
	if queueOn {
		spec := vwchar.DefaultQueueSpec()
		if depth > 0 {
			spec.MaxDepth = depth
		}
		cfg.Queue = &spec
	}
	if cacheOn || queueOn {
		return cfg.Validate()
	}
	return nil
}

func run(cfg vwchar.Config, csv bool, sloMillis float64, w io.Writer) error {
	res, err := vwchar.Run(cfg)
	if err != nil {
		return err
	}

	if cfg.Load != nil {
		fmt.Fprintf(w, "%s / %s: open-loop %q at %.3g sessions/s, %.0f s, seed %d\n",
			cfg.Environment, cfg.Mix, cfg.Load.Kind, cfg.Load.MeanRate(), cfg.Duration.Sec(), cfg.Seed)
	} else {
		fmt.Fprintf(w, "%s / %s: %d clients, %.0f s, seed %d\n",
			cfg.Environment, cfg.Mix, cfg.Clients, cfg.Duration.Sec(), cfg.Seed)
	}
	fmt.Fprintf(w, "requests: %d completed, %d errors, write fraction %.1f%%\n",
		res.Completed, res.Errors, res.WriteFraction*100)
	fmt.Fprintf(w, "response time: mean %.1f ms, p95 %.1f ms\n",
		res.MeanRespTime*1e3, res.P95RespTime*1e3)
	if s := res.Sessions; s != nil {
		fmt.Fprintf(w, "sessions: %d started (%d offered), %d finished, %d abandoned, peak %d concurrent\n",
			s.Started, s.Offered, s.Finished, s.Abandoned, s.PeakActive)
	}
	if sc := res.Scaling; sc != nil {
		fmt.Fprintf(w, "cluster: peak %d web replicas, %d scale-ups, %d scale-downs",
			sc.PeakReplicas, sc.ScaleUps, sc.ScaleDowns)
		if sc.ScaleUps > 0 {
			fmt.Fprintf(w, ", first capacity active at t=%.0fs", sc.FirstUpAt.Sec())
		}
		fmt.Fprintln(w)
	}
	if res.Requests != nil {
		if err := vwchar.AnalyzeAvailability(res, sloMillis).Write(w); err != nil {
			return err
		}
	}
	correlated := cfg.Faults != nil && cfg.Faults.Correlation != nil && !cfg.Faults.Correlation.Empty()
	if res.Hazard != nil || res.Brownout != nil || correlated {
		if err := vwchar.AnalyzeCascade(res, sloMillis).Write(w); err != nil {
			return err
		}
	}
	if res.Cache != nil || res.Queue != nil {
		if err := vwchar.AnalyzeCache(res).Write(w); err != nil {
			return err
		}
	}
	if tel := res.Telemetry; tel != nil && tel.Windows() > 0 {
		// Minimum over busy windows only: idle windows record p95=0,
		// which is an artifact, not a latency floor.
		minBusy := 0.0
		for i := 0; i < tel.Windows(); i++ {
			if tel.Throughput.At(i) <= 0 {
				continue
			}
			if v := tel.LatencyP95.At(i); minBusy == 0 || v < minBusy {
				minBusy = v
			}
		}
		fmt.Fprintf(w, "windowed p95: %.1f..%.1f ms over %d windows of %.0f s; ",
			minBusy, tel.LatencyP95.Max(), tel.Windows(), tel.LatencyP95.Interval)
		if err := vwchar.AnalyzeTransient(tel.LatencyP95, vwchar.TransientConfig{}).Write(w); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "web worker-pool growths (RAM jumps): %d\n\n", res.WebGrowths)

	tiers := []string{vwchar.TierWeb, vwchar.TierDB}
	if cfg.Environment == vwchar.Virtualized {
		tiers = append(tiers, vwchar.TierDom0)
	}
	if res.Cache != nil {
		tiers = append(tiers, vwchar.TierCache)
	}
	if res.Queue != nil {
		tiers = append(tiers, vwchar.TierQueue)
	}
	for _, tier := range tiers {
		cpu, mem := res.CPU(tier), res.Mem(tier)
		disk, net := res.Disk(tier), res.Net(tier)
		fmt.Fprintf(w, "%-8s cpu %.3g cyc/2s (max %.3g)  mem %.0f..%.0f MB  disk %.0f KB/2s  net %.0f KB/2s\n",
			tier, cpu.Mean(), cpu.Max(), mem.Min(), mem.Max(), disk.Mean(), net.Mean())
	}
	fmt.Fprintln(w)
	if csv {
		for _, tier := range tiers {
			if err := res.CPU(tier).WriteCSV(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		// The windowed application metrics as one aligned table: same
		// time axis as the resource series above.
		if tel := res.Telemetry; tel != nil {
			if err := timeseries.WriteTableCSV(w, tel.Present()...); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
