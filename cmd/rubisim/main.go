// Command rubisim runs one experiment from the paper's setup and prints
// the headline demand series plus a summary.
//
// Usage:
//
//	rubisim -env virtualized -mix browsing -clients 1000 -duration 1200 -seed 42
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vwchar"
	"vwchar/internal/sim"
)

func main() {
	env := flag.String("env", "virtualized", "deployment: virtualized | physical")
	mix := flag.String("mix", "browsing", "client mix: browsing | bidding | 30/70 | 50/50 | 70/30")
	clients := flag.Int("clients", 1000, "closed-loop client population")
	duration := flag.Float64("duration", 1200, "profiled window in seconds")
	seed := flag.Uint64("seed", 42, "experiment seed")
	csv := flag.Bool("csv", false, "emit the headline series as CSV instead of charts")
	flag.Parse()

	e, err := vwchar.ParseEnv(*env)
	if err == nil {
		var m vwchar.MixKind
		if m, err = vwchar.ParseMix(*mix); err == nil {
			cfg := vwchar.DefaultConfig(e, m)
			cfg.Clients = *clients
			cfg.Duration = sim.Seconds(*duration)
			cfg.Seed = *seed
			err = run(cfg, *csv, os.Stdout)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubisim:", err)
		os.Exit(1)
	}
}

func run(cfg vwchar.Config, csv bool, w io.Writer) error {
	res, err := vwchar.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s / %s: %d clients, %.0f s, seed %d\n",
		cfg.Environment, cfg.Mix, cfg.Clients, cfg.Duration.Sec(), cfg.Seed)
	fmt.Fprintf(w, "requests: %d completed, %d errors, write fraction %.1f%%\n",
		res.Completed, res.Errors, res.WriteFraction*100)
	fmt.Fprintf(w, "response time: mean %.1f ms, p95 %.1f ms\n",
		res.MeanRespTime*1e3, res.P95RespTime*1e3)
	fmt.Fprintf(w, "web worker-pool growths (RAM jumps): %d\n\n", res.WebGrowths)

	tiers := []string{vwchar.TierWeb, vwchar.TierDB}
	if cfg.Environment == vwchar.Virtualized {
		tiers = append(tiers, vwchar.TierDom0)
	}
	for _, tier := range tiers {
		cpu, mem := res.CPU(tier), res.Mem(tier)
		disk, net := res.Disk(tier), res.Net(tier)
		fmt.Fprintf(w, "%-8s cpu %.3g cyc/2s (max %.3g)  mem %.0f..%.0f MB  disk %.0f KB/2s  net %.0f KB/2s\n",
			tier, cpu.Mean(), cpu.Max(), mem.Min(), mem.Max(), disk.Mean(), net.Mean())
	}
	fmt.Fprintln(w)
	if csv {
		for _, tier := range tiers {
			if err := res.CPU(tier).WriteCSV(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
