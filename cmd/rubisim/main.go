// Command rubisim runs one experiment from the paper's setup and prints
// the headline demand series plus a summary.
//
// Usage:
//
//	rubisim -env virtualized -mix browsing -clients 1000 -duration 1200 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"vwchar"
	"vwchar/internal/sim"
)

func main() {
	env := flag.String("env", "virtualized", "deployment: virtualized | physical")
	mix := flag.String("mix", "browsing", "client mix: browsing | bidding | 30/70 | 50/50 | 70/30")
	clients := flag.Int("clients", 1000, "closed-loop client population")
	duration := flag.Float64("duration", 1200, "profiled window in seconds")
	seed := flag.Uint64("seed", 42, "experiment seed")
	csv := flag.Bool("csv", false, "emit the headline series as CSV instead of charts")
	flag.Parse()

	cfg := vwchar.DefaultConfig(vwchar.Env(*env), vwchar.MixKind(*mix))
	cfg.Clients = *clients
	cfg.Duration = sim.Seconds(*duration)
	cfg.Seed = *seed

	res, err := vwchar.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rubisim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s / %s: %d clients, %.0f s, seed %d\n",
		cfg.Environment, cfg.Mix, cfg.Clients, cfg.Duration.Sec(), cfg.Seed)
	fmt.Printf("requests: %d completed, %d errors, write fraction %.1f%%\n",
		res.Completed, res.Errors, res.WriteFraction*100)
	fmt.Printf("response time: mean %.1f ms, p95 %.1f ms\n",
		res.MeanRespTime*1e3, res.P95RespTime*1e3)
	fmt.Printf("web worker-pool growths (RAM jumps): %d\n\n", res.WebGrowths)

	tiers := []string{vwchar.TierWeb, vwchar.TierDB}
	if cfg.Environment == vwchar.Virtualized {
		tiers = append(tiers, vwchar.TierDom0)
	}
	for _, tier := range tiers {
		cpu, mem := res.CPU(tier), res.Mem(tier)
		disk, net := res.Disk(tier), res.Net(tier)
		fmt.Printf("%-8s cpu %.3g cyc/2s (max %.3g)  mem %.0f..%.0f MB  disk %.0f KB/2s  net %.0f KB/2s\n",
			tier, cpu.Mean(), cpu.Max(), mem.Min(), mem.Max(), disk.Mean(), net.Mean())
	}
	fmt.Println()
	if *csv {
		series := make([]*vwchar.Series, 0, len(tiers))
		for _, tier := range tiers {
			series = append(series, res.CPU(tier))
		}
		if err := writeCSV(series); err != nil {
			fmt.Fprintln(os.Stderr, "rubisim:", err)
			os.Exit(1)
		}
	}
}

func writeCSV(series []*vwchar.Series) error {
	if len(series) == 0 {
		return nil
	}
	// Reuse the figure CSV path by printing a simple table.
	for _, s := range series {
		if err := s.WriteCSV(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
