package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSmoke regenerates all artifacts at the smallest accepted scale
// (25 clients, 30 s — the same dynamics the benchmarks use) and checks
// every export lands non-empty.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 42, 0.025, 4); err != nil {
		t.Fatal(err)
	}
	want := []string{"table1.txt", "report.txt"}
	for id := 1; id <= 8; id++ {
		want = append(want, fmt.Sprintf("figure%d.csv", id))
	}
	for _, name := range want {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("artifact %s is empty", name)
		}
	}
}

func TestRunRejectsTinyScale(t *testing.T) {
	if err := run(t.TempDir(), 42, 0.001, 1); err == nil {
		t.Fatal("scale 0.001 accepted")
	}
}
