// Command figures regenerates every artifact of the paper's evaluation:
// Figures 1-8 (ASCII charts to stdout, CSV files under -out), Table 1,
// and the Section 4 characterization report.
//
// The full-scale reproduction (1000 clients, 600 samples, both
// environments, browse and bid mixes) takes well under a minute.
//
// Usage:
//
//	figures -out out -seed 42 [-scale 1.0] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vwchar"
	"vwchar/internal/sim"
)

// mixSlug makes a mix name filesystem-safe ("30/70" -> "30-70").
func mixSlug(mix vwchar.MixKind) string {
	return strings.ReplaceAll(string(mix), "/", "-")
}

func main() {
	outDir := flag.String("out", "out", "directory for CSV exports")
	seed := flag.Uint64("seed", 42, "root experiment seed")
	scale := flag.Float64("scale", 1.0, "scale factor for clients and duration (1.0 = paper scale)")
	workers := flag.Int("workers", 0, "parallel experiment workers (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*outDir, *seed, *scale, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(outDir string, seed uint64, scale float64, workers int) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	clients := int(1000 * scale)
	duration := 1200 * scale
	if clients < 10 || duration < 30 {
		return fmt.Errorf("scale %v too small", scale)
	}

	fmt.Println("== Table 1 ==")
	if err := vwchar.WriteTable1(os.Stdout); err != nil {
		return err
	}
	table1, err := os.Create(filepath.Join(outDir, "table1.txt"))
	if err != nil {
		return err
	}
	if err := vwchar.WriteTable1(table1); err != nil {
		table1.Close()
		return err
	}
	if err := table1.Close(); err != nil {
		return err
	}

	// The four runs behind every figure (each env's browse and bid) are
	// independent, so fan them out over the sweep runner instead of
	// running them back to back.
	fmt.Printf("\nrunning %d-client, %.0f s experiments (virtualized + physical, browse + bid)...\n",
		clients, duration)
	sr, err := vwchar.Sweep(vwchar.SweepSpec{
		Points: vwchar.SweepGrid(vwchar.Envs(),
			[]vwchar.MixKind{vwchar.MixBrowsing, vwchar.MixBidding},
			func(c *vwchar.Config) {
				c.Clients = clients
				c.Duration = sim.Seconds(duration)
			}),
		RootSeed: seed,
		Workers:  workers,
		OnProgress: func(p vwchar.SweepProgress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s done\n", p.Done, p.Total, p.Job.Point)
		},
	})
	if err != nil {
		return err
	}
	pairFor := func(env vwchar.Env) (*vwchar.Pair, error) {
		pair := &vwchar.Pair{}
		for mix, dst := range map[vwchar.MixKind]**vwchar.Result{
			vwchar.MixBrowsing: &pair.Browse,
			vwchar.MixBidding:  &pair.Bid,
		} {
			pr := sr.Point(fmt.Sprintf("%s/%s", env, mix))
			if pr == nil || pr.Reps[0] == nil {
				return nil, fmt.Errorf("sweep missing %s/%s", env, mix)
			}
			*dst = pr.Reps[0]
		}
		return pair, nil
	}
	virt, err := pairFor(vwchar.Virtualized)
	if err != nil {
		return err
	}
	phys, err := pairFor(vwchar.Physical)
	if err != nil {
		return err
	}

	for _, spec := range vwchar.FigureSpecs() {
		pair := virt
		if spec.Env == vwchar.Physical {
			pair = phys
		}
		fig, err := vwchar.BuildFigure(spec.ID, pair.Browse, pair.Bid)
		if err != nil {
			return err
		}
		fmt.Printf("\n== Figure %d. %s ==\n", fig.ID, fig.Caption)
		if err := vwchar.RenderFigure(os.Stdout, fig); err != nil {
			return err
		}
		name := filepath.Join(outDir, fmt.Sprintf("figure%d.csv", fig.ID))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := vwchar.WriteFigureCSV(f, fig); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(series exported to %s)\n", name)
	}

	// Figure 9 goes beyond the paper's fixed pair: one autoscaled
	// flash-crowd run pairing the web tier's CPU demand with the
	// per-window latency p95, replica count overlaid, showing capacity
	// arriving mid-spike. One extra modest open-loop run.
	fmt.Fprintln(os.Stderr, "running autoscaled flash crowd for figure 9...")
	crowd, err := vwchar.LoadScenario("flash-crowd")
	if err != nil {
		return err
	}
	cfg9 := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	cfg9.Duration = sim.Seconds(600)
	cfg9.Seed = seed
	cfg9.Load = &crowd
	cfg9.Topology = &vwchar.Topology{
		WebReplicas:    1,
		MaxWebReplicas: 4,
		LB:             vwchar.LBLeastInFlight,
		Autoscaler:     &vwchar.AutoscalerSpec{SLOMillis: 500},
	}
	res9, err := vwchar.Run(cfg9)
	if err != nil {
		return err
	}
	fig9, err := vwchar.BuildSaturationFigure(res9)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Figure %d. %s ==\n", fig9.ID, fig9.Caption)
	if err := vwchar.RenderFigure(os.Stdout, fig9); err != nil {
		return err
	}
	name9 := filepath.Join(outDir, fmt.Sprintf("figure%d.csv", fig9.ID))
	f9, err := os.Create(name9)
	if err != nil {
		return err
	}
	if err := vwchar.WriteFigureCSV(f9, fig9); err != nil {
		f9.Close()
		return err
	}
	if err := f9.Close(); err != nil {
		return err
	}
	fmt.Printf("(series exported to %s)\n", name9)

	// The windowed application-metric series behind each run: latency
	// quantiles, throughput, and concurrency per 2 s window, on the
	// same time axis as the figures' resource series.
	for _, exp := range []struct {
		env  vwchar.Env
		pair *vwchar.Pair
	}{{vwchar.Virtualized, virt}, {vwchar.Physical, phys}} {
		for _, run := range []struct {
			mix vwchar.MixKind
			res *vwchar.Result
		}{{vwchar.MixBrowsing, exp.pair.Browse}, {vwchar.MixBidding, exp.pair.Bid}} {
			name := filepath.Join(outDir, fmt.Sprintf("telemetry_%s_%s.csv",
				exp.env, mixSlug(run.mix)))
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := vwchar.WriteTelemetryCSV(f, run.res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("(windowed telemetry exported to %s)\n", name)
		}
	}

	fmt.Println("\n== Section 4 characterization ==")
	report := vwchar.Characterize(virt, phys)
	if err := report.Write(os.Stdout); err != nil {
		return err
	}
	rf, err := os.Create(filepath.Join(outDir, "report.txt"))
	if err != nil {
		return err
	}
	if err := report.Write(rf); err != nil {
		rf.Close()
		return err
	}
	return rf.Close()
}
