// Command figures regenerates every artifact of the paper's evaluation:
// Figures 1-8 (ASCII charts to stdout, CSV files under -out), Table 1,
// and the Section 4 characterization report.
//
// The full-scale reproduction (1000 clients, 600 samples, both
// environments, browse and bid mixes) takes well under a minute.
//
// Usage:
//
//	figures -out out -seed 42 [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vwchar"
)

func main() {
	outDir := flag.String("out", "out", "directory for CSV exports")
	seed := flag.Uint64("seed", 42, "experiment seed")
	scale := flag.Float64("scale", 1.0, "scale factor for clients and duration (1.0 = paper scale)")
	flag.Parse()

	if err := run(*outDir, *seed, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(outDir string, seed uint64, scale float64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	clients := int(1000 * scale)
	duration := 1200 * scale
	if clients < 10 || duration < 30 {
		return fmt.Errorf("scale %v too small", scale)
	}

	fmt.Println("== Table 1 ==")
	if err := vwchar.WriteTable1(os.Stdout); err != nil {
		return err
	}
	table1, err := os.Create(filepath.Join(outDir, "table1.txt"))
	if err != nil {
		return err
	}
	if err := vwchar.WriteTable1(table1); err != nil {
		table1.Close()
		return err
	}
	if err := table1.Close(); err != nil {
		return err
	}

	fmt.Printf("\nrunning virtualized pair (%d clients, %.0f s)...\n", clients, duration)
	virt, err := vwchar.RunPairScaled(vwchar.Virtualized, seed, clients, duration)
	if err != nil {
		return err
	}
	fmt.Println("running physical pair...")
	phys, err := vwchar.RunPairScaled(vwchar.Physical, seed+100, clients, duration)
	if err != nil {
		return err
	}

	for _, spec := range vwchar.FigureSpecs() {
		pair := virt
		if spec.Env == vwchar.Physical {
			pair = phys
		}
		fig, err := vwchar.BuildFigure(spec.ID, pair.Browse, pair.Bid)
		if err != nil {
			return err
		}
		fmt.Printf("\n== Figure %d. %s ==\n", fig.ID, fig.Caption)
		if err := vwchar.RenderFigure(os.Stdout, fig); err != nil {
			return err
		}
		name := filepath.Join(outDir, fmt.Sprintf("figure%d.csv", fig.ID))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := vwchar.WriteFigureCSV(f, fig); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("(series exported to %s)\n", name)
	}

	fmt.Println("\n== Section 4 characterization ==")
	report := vwchar.Characterize(virt, phys)
	if err := report.Write(os.Stdout); err != nil {
		return err
	}
	rf, err := os.Create(filepath.Join(outDir, "report.txt"))
	if err != nil {
		return err
	}
	if err := report.Write(rf); err != nil {
		rf.Close()
		return err
	}
	return rf.Close()
}
