package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vwchar"
	"vwchar/internal/sim"
)

// TestTraceAnalysisSmoke exercises the CSV-analysis mode on a trace the
// simulator itself exported.
func TestTraceAnalysisSmoke(t *testing.T) {
	cfg := vwchar.DefaultConfig(vwchar.Virtualized, vwchar.MixBrowsing)
	cfg.Clients = 20
	cfg.Duration = 60 * sim.Second
	res, err := vwchar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CPU(vwchar.TierWeb).WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(path); err != nil {
		t.Fatal(err)
	}
}

// TestSweepModeSmoke runs the no-argument sweep mode in-process at a
// tiny scale: the full 2-env × 5-mix grid, one replication each, over a
// small worker pool.
func TestSweepModeSmoke(t *testing.T) {
	var out, progress bytes.Buffer
	opts := sweepOptions{
		Workers:      4,
		Replications: 1,
		Seed:         42,
		Clients:      15,
		Duration:     30,
		Progress:     &progress,
	}
	if err := runSweep(opts, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"full grid: 10 points x 1 replications",
		"virtualized/browsing",
		"physical/70/30",
		"throughput_rps",
		"web-tier CPU demand",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(progress.String(), "[10/10]") {
		t.Fatalf("progress did not reach 10/10:\n%s", progress.String())
	}
}
