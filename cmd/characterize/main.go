// Command characterize computes workload statistics two ways:
//
// With a trace argument it recomputes statistics from an exported series
// CSV (as written by rubisim -csv or cmd/figures): summary statistics,
// distribution fit, autocorrelation, and jump detection — the
// trace-analysis half of the paper without rerunning the simulation.
//
// With no argument it runs the paper's full 2-env × 5-mix experiment
// grid through the parallel sweep runner, replicating every point with
// independent seeds, and prints each metric as mean ± 95% confidence
// interval plus the distribution fit of the web tier's CPU demand. The
// aggregated output is byte-identical for a given -seed regardless of
// -workers.
//
// Usage:
//
//	characterize trace.csv
//	characterize [-workers N] [-replications R] [-seed S] [-clients C] [-duration SEC]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vwchar"
	"vwchar/internal/sim"
	"vwchar/internal/stats"
	"vwchar/internal/timeseries"
)

func main() {
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	replications := flag.Int("replications", 3, "replications per sweep point")
	seed := flag.Uint64("seed", 42, "root seed for the sweep")
	clients := flag.Int("clients", 200, "closed-loop client population per point")
	duration := flag.Float64("duration", 120, "profiled window per replication in seconds")
	flag.Parse()

	switch flag.NArg() {
	case 0:
		opts := sweepOptions{
			Workers:      *workers,
			Replications: *replications,
			Seed:         *seed,
			Clients:      *clients,
			Duration:     *duration,
			Progress:     os.Stderr,
		}
		if err := runSweep(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
	case 1:
		if err := run(flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: characterize [flags] [trace.csv]")
		os.Exit(2)
	}
}

type sweepOptions struct {
	Workers      int
	Replications int
	Seed         uint64
	Clients      int
	Duration     float64
	// Progress receives live per-job completion lines (nil to disable).
	Progress io.Writer
}

// runSweep characterizes the full experiment grid: aggregate statistics
// across replications per point, then the distribution family of the
// web tier's CPU demand pooled over that point's replications.
func runSweep(opts sweepOptions, w io.Writer) error {
	if opts.Replications < 1 {
		opts.Replications = 1
	}
	points := vwchar.FullSweepGrid(func(c *vwchar.Config) {
		c.Clients = opts.Clients
		c.Duration = sim.Seconds(opts.Duration)
	})
	spec := vwchar.SweepSpec{
		Points:       points,
		Replications: opts.Replications,
		RootSeed:     opts.Seed,
		Workers:      opts.Workers,
	}
	if opts.Progress != nil {
		spec.OnProgress = func(p vwchar.SweepProgress) {
			status := "ok"
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(opts.Progress, "[%d/%d] %s rep %d %s\n", p.Done, p.Total, p.Job.Point, p.Job.Rep, status)
		}
	}
	// On a partial failure the runner still aggregates every point over
	// its surviving replications — render what completed, then report
	// the sweep error so one bad replication can't discard the rest.
	sr, sweepErr := vwchar.Sweep(spec)
	if sr == nil {
		return sweepErr
	}

	fmt.Fprintf(w, "full grid: %d points x %d replications, root seed %d\n\n",
		len(points), opts.Replications, opts.Seed)
	if err := sr.WriteTable(w); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nweb-tier CPU demand, pooled across replications:\n")
	for i := range sr.Points {
		pr := &sr.Points[i]
		// Marginal statistics (CoV, distribution fit) pool samples across
		// replications; lag-1 autocorrelation is a time statistic, so it
		// is computed per replication and averaged — concatenating
		// independent runs would fabricate adjacency at the junctions.
		var pooled []float64
		var lag1 []float64
		for _, rep := range pr.Reps {
			if rep == nil {
				continue
			}
			values := rep.CPU(vwchar.TierWeb).Values
			pooled = append(pooled, values...)
			lag1 = append(lag1, stats.Autocorrelation(values, 1))
		}
		if len(pooled) == 0 {
			continue
		}
		s := stats.Summarize(pooled)
		line := fmt.Sprintf("  %-24s cov %.3f  lag1 %.3f", pr.Point.Name, s.CoV, stats.Mean(lag1))
		if dist, ks, err := stats.BestFit(pooled); err == nil {
			line += fmt.Sprintf("  best fit %s (KS %.4f)", dist.Name(), ks)
		}
		fmt.Fprintln(w, line)
	}
	return sweepErr
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	series, err := timeseries.ReadCSV(f)
	if err != nil {
		return err
	}
	fmt.Printf("series %q: %d samples at %.0f s interval\n\n",
		series.Name, series.Len(), series.Interval)

	s := stats.Summarize(series.Values)
	fmt.Printf("mean %.4g  std %.4g  cov %.3f  min %.4g  max %.4g\n",
		s.Mean, s.Std, s.CoV, s.Min, s.Max)
	fmt.Printf("median %.4g  p95 %.4g  p99 %.4g  skewness %.3f\n\n",
		s.Median, s.P95, s.P99, s.Skewness)

	if dist, ks, err := stats.BestFit(series.Values); err == nil {
		fmt.Printf("best-fit distribution: %s (%s), KS distance %.4f\n",
			dist.Name(), dist.Params(), ks)
	} else {
		fmt.Printf("no distribution family fits: %v\n", err)
	}

	fmt.Printf("autocorrelation: lag1 %.3f  lag5 %.3f  lag30 %.3f\n",
		stats.Autocorrelation(series.Values, 1),
		stats.Autocorrelation(series.Values, 5),
		stats.Autocorrelation(series.Values, 30))

	jumps := stats.DetectJumps(series.Values, 15, s.Std)
	if len(jumps) == 0 {
		fmt.Println("no sustained level shifts detected")
		return nil
	}
	fmt.Printf("%d sustained level shift(s):\n", len(jumps))
	for _, j := range jumps {
		fmt.Printf("  t=%.0fs  %.4g -> %.4g (delta %.4g)\n",
			series.TimeAt(j.Index), j.Before, j.After, j.Magnitude())
	}
	return nil
}
