// Command characterize recomputes workload statistics from an exported
// series CSV (as written by rubisim -csv or cmd/figures): summary
// statistics, distribution fit, autocorrelation, and jump detection —
// the trace-analysis half of the paper without rerunning the simulation.
//
// Usage:
//
//	characterize trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"vwchar/internal/stats"
	"vwchar/internal/timeseries"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: characterize <trace.csv>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	series, err := timeseries.ReadCSV(f)
	if err != nil {
		return err
	}
	fmt.Printf("series %q: %d samples at %.0f s interval\n\n",
		series.Name, series.Len(), series.Interval)

	s := stats.Summarize(series.Values)
	fmt.Printf("mean %.4g  std %.4g  cov %.3f  min %.4g  max %.4g\n",
		s.Mean, s.Std, s.CoV, s.Min, s.Max)
	fmt.Printf("median %.4g  p95 %.4g  p99 %.4g  skewness %.3f\n\n",
		s.Median, s.P95, s.P99, s.Skewness)

	if dist, ks, err := stats.BestFit(series.Values); err == nil {
		fmt.Printf("best-fit distribution: %s (%s), KS distance %.4f\n",
			dist.Name(), dist.Params(), ks)
	} else {
		fmt.Printf("no distribution family fits: %v\n", err)
	}

	fmt.Printf("autocorrelation: lag1 %.3f  lag5 %.3f  lag30 %.3f\n",
		stats.Autocorrelation(series.Values, 1),
		stats.Autocorrelation(series.Values, 5),
		stats.Autocorrelation(series.Values, 30))

	jumps := stats.DetectJumps(series.Values, 15, s.Std)
	if len(jumps) == 0 {
		fmt.Println("no sustained level shifts detected")
		return nil
	}
	fmt.Printf("%d sustained level shift(s):\n", len(jumps))
	for _, j := range jumps {
		fmt.Printf("  t=%.0fs  %.4g -> %.4g (delta %.4g)\n",
			series.TimeAt(j.Index), j.Before, j.After, j.Magnitude())
	}
	return nil
}
