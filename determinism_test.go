package vwchar_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"vwchar"
	"vwchar/internal/sim"
)

// goldenSweepSHA256 is the SHA-256 of the aggregated sweep table for the
// reduced grid below, captured on the kernel *before* the event-pooling
// rewrite (PR 3). The simulation's determinism contract says this stream
// depends only on the seed and the grid — never on scheduler internals —
// so any kernel or model-layer change that shifts event ordering shows
// up here as a hash mismatch rather than as silently different figures.
//
// If a PR intentionally changes model behaviour (costs, workloads,
// RNG draw sequence), regenerate with:
//
//	go test -run TestFullSweepOutputMatchesGoldenHash -v
//
// and update the constant alongside an explanation of what moved.
const goldenSweepSHA256 = "ed6435cc16aa747ba32cc3214b07c763fdf27ec1949404d0402c5791313bdfaf"

// goldenSweepSpec is the reduced full grid used for the golden hash:
// every (env, mix) point of the paper's sweep, 2 replications, small
// dataset — big enough to exercise both deployments, all five mixes,
// the storage engine, and millions of kernel events, small enough for
// CI.
func goldenSweepSpec() vwchar.SweepSpec {
	return vwchar.SweepSpec{
		Points: vwchar.FullSweepGrid(func(c *vwchar.Config) {
			c.Clients = 20
			c.Duration = 20 * sim.Second
			c.Dataset.Users = 2000
			c.Dataset.ActiveItems = 600
			c.Dataset.OldItems = 1300
			c.Dataset.BufferPages = 500
		}),
		Replications: 2,
		RootSeed:     42,
		Workers:      1,
	}
}

// TestFullSweepOutputMatchesGoldenHash hashes the per-grid-point stats
// stream of the full sweep and compares it against the hash committed
// before the kernel rewrite: the pooled-event kernel must replay the
// paper's experiment grid byte-for-byte.
func TestFullSweepOutputMatchesGoldenHash(t *testing.T) {
	sr, err := vwchar.Sweep(goldenSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sr.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	got := hex.EncodeToString(sum[:])
	if got != goldenSweepSHA256 {
		t.Fatalf("sweep output hash changed:\n  got  %s\n  want %s\n(%d bytes of table output; see the constant's comment for when updating is legitimate)",
			got, goldenSweepSHA256, buf.Len())
	}
}

// loadScenarioSweepSpec is a reduced open-loop grid: both deployments
// crossed with every catalog scenario plus an inline trace replay, the
// per-kind time parameters compressed into the short window.
func loadScenarioSweepSpec(workers int) vwchar.SweepSpec {
	mutate := func(c *vwchar.Config) {
		c.Duration = 40 * sim.Second
		c.Dataset.Users = 2000
		c.Dataset.ActiveItems = 600
		c.Dataset.OldItems = 1300
		c.Dataset.BufferPages = 500
		l := c.Load
		l.RampSeconds = 5
		switch l.Kind {
		case vwchar.LoadDiurnal:
			l.PeriodSeconds = 20
		case vwchar.LoadSpike:
			l.SpikeAt, l.SpikeRamp, l.SpikeHold = 10, 4, 10
		case vwchar.LoadBursty:
			l.BaseDwell, l.BurstDwell = 10, 4
		}
	}
	scenarios := append(vwchar.LoadScenarios(), vwchar.LoadNamedSpec{
		Name:    "trace",
		Summary: "inline trace replay",
		Spec: vwchar.LoadSpec{
			Kind:        vwchar.LoadTrace,
			TracePoints: []vwchar.TracePoint{{TimeSeconds: 0, Rate: 1}, {TimeSeconds: 15, Rate: 4}, {TimeSeconds: 35, Rate: 2}},
			SessionMean: 6,
		},
	})
	return vwchar.SweepSpec{
		Points:       vwchar.SweepLoadGrid(vwchar.Envs(), vwchar.MixBrowsing, scenarios, mutate),
		Replications: 1,
		RootSeed:     42,
		Workers:      workers,
	}
}

// TestLoadScenarioSweepByteIdenticalAcrossWorkers extends the
// determinism contract to the open-loop subsystem: every workload
// scenario — all five arrival families, both deployments — must produce
// byte-identical aggregated output at workers=1 and workers=8 for a
// fixed seed, exactly like the paper's closed-loop grid.
func TestLoadScenarioSweepByteIdenticalAcrossWorkers(t *testing.T) {
	table := func(workers int) ([]byte, *vwchar.SweepResult) {
		sr, err := vwchar.Sweep(loadScenarioSweepSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sr.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), sr
	}
	seq, sr := table(1)
	par, _ := table(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("open-loop sweep output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	// Every scenario actually ran sessions (the sweep is not vacuous).
	for i := range sr.Points {
		pr := &sr.Points[i]
		if pr.Metric(vwchar.MetricSessionsStarted).Mean <= 0 {
			t.Fatalf("%s started no sessions", pr.Point.Name)
		}
	}
}
