package vwchar_test

import (
	"bytes"
	"testing"

	"vwchar"
	"vwchar/internal/sim"
)

// cacheSweepSpec is a reduced grid of cache+queue runs: both mixes on
// the virtualized testbed with a leased, short-TTL cache tier (so
// expiries and re-fetches happen inside the run) and the write-behind
// broker in front of the DB primary.
func cacheSweepSpec(workers int) vwchar.SweepSpec {
	return vwchar.SweepSpec{
		Points: vwchar.SweepGrid(
			[]vwchar.Env{vwchar.Virtualized},
			[]vwchar.MixKind{vwchar.MixBrowsing, vwchar.MixBidding},
			func(c *vwchar.Config) {
				c.Clients = 60
				c.Duration = 30 * sim.Second
				c.Dataset.Users = 2000
				c.Dataset.ActiveItems = 600
				c.Dataset.OldItems = 1300
				c.Dataset.BufferPages = 500
				cache := vwchar.DefaultCacheSpec()
				cache.TTLSeconds = 8
				cache.Leases = true
				c.Cache = &cache
				queue := vwchar.DefaultQueueSpec()
				c.Queue = &queue
			}),
		Replications: 2,
		RootSeed:     42,
		Workers:      workers,
	}
}

// TestCacheSweepByteIdenticalAcrossWorkers extends the determinism
// contract to the aux tiers: cache lookups, lease parking, TTL
// expiries, invalidation traffic, and the broker's journal/drain
// cycle must produce byte-identical aggregated output at workers=1
// and workers=8 for a fixed seed.
func TestCacheSweepByteIdenticalAcrossWorkers(t *testing.T) {
	table := func(workers int) ([]byte, *vwchar.SweepResult) {
		sr, err := vwchar.Sweep(cacheSweepSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sr.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), sr
	}
	seq, sr := table(1)
	par, _ := table(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("cache sweep output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	// Non-vacuousness: every replication actually drove the cache, and
	// the bidding points pushed writes through the broker.
	queuedWrites := false
	for i := range sr.Points {
		pr := &sr.Points[i]
		for _, rep := range pr.Reps {
			if rep.Cache == nil || rep.Cache.Gets == 0 || rep.Cache.Hits == 0 {
				t.Fatalf("%s: cache tier idle: %+v", pr.Point.Name, rep.Cache)
			}
			if rep.Queue == nil {
				t.Fatalf("%s: queue stats missing", pr.Point.Name)
			}
			if rep.Queue.Published > 0 {
				queuedWrites = true
			}
		}
	}
	if !queuedWrites {
		t.Fatal("no sweep point published a single write through the broker")
	}
}
