#!/usr/bin/env bash
# Runs the tracked benchmarks and emits a BENCH_<date>.json snapshot in
# the repo root, so the perf trajectory is comparable across PRs.
#
# Usage:  scripts/bench.sh   # defaults: 3x whole-sim, 20000x micro
#         BENCHTIME=10x scripts/bench.sh   # override both
#
# The snapshot maps benchmark name -> ns/op and benchmark name ->
# allocs/op (everything runs under -benchmem). Whole-sim benchmarks
# (EngineOnly, the sweep pair) run few iterations; micro-benchmarks run
# enough to be stable at the chosen -benchtime.
set -euo pipefail
cd "$(dirname "$0")/.."

sim_benchtime="${BENCHTIME:-3x}"
micro_benchtime="${BENCHTIME:-20000x}"
out="BENCH_$(date +%Y-%m-%d).json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run xxx -bench 'BenchmarkEngineOnly$|BenchmarkSweepWorkers|BenchmarkOpenLoopDriver' \
	-benchtime "$sim_benchtime" -benchmem . | tee -a "$tmp"
go test -run xxx -bench 'BenchmarkSnapshotAttach$' \
	-benchtime "$micro_benchtime" -benchmem . | tee -a "$tmp"
go test -run xxx \
	-bench 'BenchmarkBTree|BenchmarkBufferPoolGet|BenchmarkBulkLoad|BenchmarkHeapInsert|BenchmarkEngineQueryMix|BenchmarkCOWFirstWrite' \
	-benchtime "$micro_benchtime" -benchmem ./internal/rubisdb/ | tee -a "$tmp"
go test -run xxx -bench 'BenchmarkKernel' \
	-benchtime "$micro_benchtime" -benchmem ./internal/sim/ | tee -a "$tmp"
go test -run xxx -bench 'BenchmarkArrivalSchedule$' \
	-benchtime "$micro_benchtime" -benchmem ./internal/load/ | tee -a "$tmp"
go test -run xxx -bench 'BenchmarkLatencyRecord$|BenchmarkWindowRotate$' \
	-benchtime "$micro_benchtime" -benchmem ./internal/telemetry/ | tee -a "$tmp"
go test -run xxx -bench 'BenchmarkLBDispatch|BenchmarkDispatchWithFaults|BenchmarkDispatchWithCascade|BenchmarkCacheHitDispatch' \
	-benchtime "$micro_benchtime" -benchmem ./internal/tiers/ | tee -a "$tmp"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "ns_per_op": {\n'
	awk '/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		lines[n++] = sprintf("    \"%s\": %s", name, $3)
	}
	END {
		for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
	}' "$tmp"
	printf '  },\n'
	printf '  "allocs_per_op": {\n'
	awk '/^Benchmark/ && $8 == "allocs/op" {
		name = $1
		sub(/-[0-9]+$/, "", name)
		lines[n++] = sprintf("    \"%s\": %s", name, $7)
	}
	END {
		for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
	}' "$tmp"
	printf '  }\n'
	printf '}\n'
} > "$out"
echo "wrote $out"
